//! The application-facing MPI handle.
//!
//! Each rank's simulated process owns an `Mpi` value. Operations either
//! interact with the shared [`World`](crate::world::World) through the
//! kernel (`exec`) or, in *skip-replay* mode after a restart, complete
//! instantly: the first `skip_until` operations were already performed
//! before the restored checkpoint, so replaying them costs nothing — the
//! fault-tolerance protocols guarantee the message-level consistency of the
//! cut (see DESIGN.md §5.1).

use std::sync::Arc;

use ftmpi_sim::{ProcCtx, SimDuration};

use crate::types::{Rank, RecvInfo, Tag};
use crate::world::WorldRef;

/// Handle on a nonblocking operation.
#[derive(Debug, Clone, Copy)]
pub struct ReqHandle {
    kind: ReqKind,
}

#[derive(Debug, Clone, Copy)]
enum ReqKind {
    /// A live receive request registered with the runtime.
    Recv { id: u64 },
    /// A receive request whose posting was skip-replayed but whose wait was
    /// not: the wait re-posts a blocking receive with these parameters.
    ReplayRecv { src: Option<Rank>, tag: Option<Tag> },
    /// A send request (eager semantics: already complete).
    Send,
}

/// Per-rank application handle: point-to-point operations, collectives,
/// virtual compute, and the virtual clock.
pub struct Mpi {
    ctx: ProcCtx,
    world: WorldRef,
    rank: Rank,
    size: usize,
    /// Operations issued so far (kernel-interacting ops only).
    ops_done: u64,
    /// Ops below this index replay instantly (restored from an image).
    skip_until: u64,
    /// Compute time already performed before the checkpoint (consumed by
    /// the first compute phases after the skip region).
    credit: SimDuration,
    /// Collective round counter (gives each collective instance fresh tags).
    pub(crate) coll_seq: u64,
    finished: bool,
}

impl Mpi {
    pub(crate) fn new(
        ctx: ProcCtx,
        world: WorldRef,
        rank: Rank,
        size: usize,
        skip_until: u64,
        credit: SimDuration,
    ) -> Mpi {
        Mpi {
            ctx,
            world,
            rank,
            size,
            ops_done: 0,
            skip_until,
            credit,
            coll_seq: 0,
            finished: false,
        }
    }

    /// This process's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The rank-local virtual clock in seconds (MPI_Wtime).
    pub fn wtime(&self) -> f64 {
        self.ctx.now().as_secs_f64()
    }

    /// Is this execution currently skip-replaying restored operations?
    pub fn replaying(&self) -> bool {
        self.ops_done < self.skip_until
    }

    /// Begin the next operation; returns `true` if it must be skip-replayed.
    fn next_op_skipped(&mut self) -> bool {
        let skipped = self.ops_done < self.skip_until;
        self.ops_done += 1;
        skipped
    }

    /// Model local computation of duration `d`.
    ///
    /// Free during skip-replay; partially free while restart credit remains.
    pub fn compute(&mut self, d: SimDuration) {
        if self.replaying() {
            return;
        }
        let d = if self.credit.is_zero() {
            d
        } else {
            let used = self.credit.min(d);
            self.credit = self.credit.saturating_sub(used);
            d.saturating_sub(used)
        };
        if !d.is_zero() {
            self.ctx.advance(d);
        }
    }

    /// Blocking standard send (eager/buffered completion semantics).
    pub async fn send(&mut self, dst: Rank, tag: Tag, bytes: u64) {
        assert!(dst < self.size, "send to invalid rank {dst}");
        if self.next_op_skipped() {
            return;
        }
        let world = Arc::clone(&self.world);
        let src = self.rank;
        self.ctx
            .exec::<(), _>(move |sc, reply| {
                world.lock().post_send(sc, src, dst, tag, bytes, reply);
            })
            .await;
    }

    /// Blocking receive; `None` matches any source / any tag.
    pub async fn recv(&mut self, src: Option<Rank>, tag: Option<Tag>) -> RecvInfo {
        if self.next_op_skipped() {
            return RecvInfo::replayed();
        }
        let world = Arc::clone(&self.world);
        let dst = self.rank;
        self.ctx
            .exec::<RecvInfo, _>(move |sc, reply| {
                world.lock().post_recv_blocking(sc, dst, src, tag, reply);
            })
            .await
    }

    /// Nonblocking receive: returns a request to [`wait`](Mpi::wait) on.
    pub async fn irecv(&mut self, src: Option<Rank>, tag: Option<Tag>) -> ReqHandle {
        if self.next_op_skipped() {
            // If the matching wait is *also* inside the skip region it will
            // be a no-op; otherwise it re-posts a blocking receive with the
            // recorded parameters (see ReqKind::ReplayRecv).
            return ReqHandle {
                kind: ReqKind::ReplayRecv { src, tag },
            };
        }
        let world = Arc::clone(&self.world);
        let dst = self.rank;
        let id = self
            .ctx
            .exec::<u64, _>(move |sc, reply| {
                world.lock().post_irecv(sc, dst, src, tag, reply);
            })
            .await;
        ReqHandle {
            kind: ReqKind::Recv { id },
        }
    }

    /// Nonblocking send. With the runtime's eager semantics the message is
    /// buffered at posting time, so the request is complete on return.
    pub async fn isend(&mut self, dst: Rank, tag: Tag, bytes: u64) -> ReqHandle {
        self.send(dst, tag, bytes).await;
        ReqHandle {
            kind: ReqKind::Send,
        }
    }

    /// Wait for a nonblocking operation.
    pub async fn wait(&mut self, req: ReqHandle) -> RecvInfo {
        match req.kind {
            ReqKind::Send => {
                if self.next_op_skipped() {
                    return RecvInfo::replayed();
                }
                // Complete immediately (library entry with negligible cost).
                let world = Arc::clone(&self.world);
                let rank = self.rank;
                self.ctx
                    .exec::<(), _>(move |sc, reply| {
                        let mut w = world.lock();
                        let _ = &mut w.rt.ranks[rank]; // runtime entry
                        w.proto_entry(sc, rank);
                        reply.complete(sc, ());
                    })
                    .await;
                RecvInfo::replayed()
            }
            ReqKind::ReplayRecv { src, tag } => {
                if self.next_op_skipped() {
                    return RecvInfo::replayed();
                }
                // The posting was replayed away; issue the receive now.
                let world = Arc::clone(&self.world);
                let dst = self.rank;
                self.ctx
                    .exec::<RecvInfo, _>(move |sc, reply| {
                        world.lock().post_recv_blocking(sc, dst, src, tag, reply);
                    })
                    .await
            }
            ReqKind::Recv { id } => {
                if self.next_op_skipped() {
                    // Cannot happen: a live request implies its posting was
                    // not skipped, and skip is a prefix of the op stream.
                    return RecvInfo::replayed();
                }
                let world = Arc::clone(&self.world);
                let rank = self.rank;
                self.ctx
                    .exec::<RecvInfo, _>(move |sc, reply| {
                        world.lock().wait_request(sc, rank, id, reply);
                    })
                    .await
            }
        }
    }

    /// Wait for all requests (in order).
    pub async fn waitall(&mut self, reqs: impl IntoIterator<Item = ReqHandle>) {
        for r in reqs {
            self.wait(r).await;
        }
    }

    /// Fused shift: send `bytes` to `to`, receive from `from` (same tag),
    /// in one kernel interaction — the pipelined-sweep / ring primitive.
    /// Equivalent to `send(to) + recv(from)` and *counted as those two
    /// operations*, so a checkpoint cut landing between the completed send
    /// and the pending receive replays only the receive half (re-sending
    /// would duplicate the pre-cut message).
    pub async fn shift(&mut self, to: Rank, from: Rank, tag: Tag, bytes: u64) -> RecvInfo {
        assert!(to < self.size && from < self.size);
        let send_idx = self.ops_done;
        self.ops_done += 2;
        if send_idx + 1 < self.skip_until {
            return RecvInfo::replayed(); // both halves pre-cut
        }
        let world = Arc::clone(&self.world);
        let me = self.rank;
        if send_idx >= self.skip_until {
            // Both halves live: the fused fast path.
            self.ctx
                .exec::<RecvInfo, _>(move |sc, reply| {
                    world.lock().post_shift(sc, me, to, from, tag, bytes, reply);
                })
                .await
        } else {
            // Send was completed before the checkpoint; only the receive
            // replays (the message comes from the restored channel state).
            self.ctx
                .exec::<RecvInfo, _>(move |sc, reply| {
                    world
                        .lock()
                        .post_recv_blocking(sc, me, Some(from), Some(tag), reply);
                })
                .await
        }
    }

    /// Fused pairwise exchange with a single partner (both directions).
    pub async fn exchange(&mut self, partner: Rank, tag: Tag, bytes: u64) -> RecvInfo {
        self.shift(partner, partner, tag, bytes).await
    }

    /// Combined send+receive (deadlock-free pairwise exchange).
    pub async fn sendrecv(
        &mut self,
        dst: Rank,
        stag: Tag,
        sbytes: u64,
        src: Option<Rank>,
        rtag: Option<Tag>,
    ) -> RecvInfo {
        let r = self.irecv(src, rtag).await;
        self.send(dst, stag, sbytes).await;
        self.wait(r).await
    }

    /// Mark this rank's application code complete. Called automatically by
    /// the rank trampoline; idempotent.
    pub async fn finalize(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.ops_done += 1; // finalize is an op, but never skipped:
                            // a restored image can only have been taken
                            // before the rank finished.
        let world = Arc::clone(&self.world);
        let rank = self.rank;
        self.ctx
            .exec::<(), _>(move |sc, reply| {
                world.lock().mark_finished(sc, rank, reply);
            })
            .await;
    }
}
