//! An MPI-like message-passing runtime over the `ftmpi` simulation kernel.
//!
//! The runtime mirrors the structure the paper instruments: applications run
//! as simulated processes ("ranks") issuing point-to-point and collective
//! operations; the runtime core owns the matching engine, per-channel FIFO
//! sequencing and the network model; and a pluggable [`Protocol`] receives
//! the same hooks the paper adds to MPICH — send-posting interception
//! (MPICH2-Pcl's "hook in the request posting function"), message-arrival
//! interception (Vcl's daemon logging, Nemesis' delayed receive queue), and
//! runtime-entry notification (progress-engine activity, which gates marker
//! handling in the blocking protocol).
//!
//! Fault tolerance semantics (checkpoint waves, images, restart) live in
//! `ftmpi-core`; this crate provides the mechanisms they need:
//!
//! * **operation counting** — every application-visible operation gets a
//!   sequence number, so a checkpoint can record "rank r had completed k
//!   operations" and a restarted rank can *skip-replay* its first k
//!   operations instantly and deterministically;
//! * **time credit** — compute time elapsed between the last runtime
//!   interaction and the checkpoint instant is recorded and credited back
//!   after restart, making restart timing equivalent to resuming a
//!   system-level process image mid-computation;
//! * **epochs** — every in-flight network event carries the job epoch and is
//!   discarded if a failure-restart bumped it meanwhile.

#![warn(missing_docs)]

mod collectives;
mod config;
mod handle;
mod placement;
mod protocol;
mod runtime;
mod types;
mod world;

pub use config::RuntimeConfig;
pub use handle::{Mpi, ReqHandle};
pub use placement::Placement;
pub use protocol::{ArrivalAction, DummyProtocol, Protocol, SendAction};
pub use runtime::{RaceFixture, RankState, RankStatus, RuntimeCore, RuntimeStats};
pub use types::{AppMsg, ChannelKey, MsgSeq, Rank, RecvInfo, Tag, ANY_SOURCE, ANY_TAG};
pub use world::{app_fn, spawn_rank, AppFn, AppFuture, World, WorldRef};
