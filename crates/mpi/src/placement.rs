//! Rank-to-node placement policies.
//!
//! The paper's deployments: one rank per node up to 144 processes, two ranks
//! per dual-processor node beyond (sharing the NIC — the cause of the
//! slowdown at 169+ processes in Fig. 6 and of 32≈64 in Fig. 8), and block
//! distribution across grid clusters for the large-scale runs.

use ftmpi_net::{NodeId, Topology};

use crate::types::Rank;

/// A resolved placement: node of every rank.
#[derive(Debug, Clone)]
pub struct Placement {
    nodes: Vec<NodeId>,
}

impl Placement {
    /// Place each rank on its own node (`ranks <= topology nodes`).
    pub fn one_per_node(topo: &Topology, ranks: usize) -> Placement {
        assert!(
            ranks <= topo.node_count(),
            "need {ranks} nodes, topology has {}",
            topo.node_count()
        );
        Placement {
            nodes: (0..ranks).map(NodeId).collect(),
        }
    }

    /// Place two ranks per (dual-processor) node: ranks 0,1 on node 0, etc.
    pub fn two_per_node(topo: &Topology, ranks: usize) -> Placement {
        let needed = ranks.div_ceil(2);
        assert!(
            needed <= topo.node_count(),
            "need {needed} nodes, topology has {}",
            topo.node_count()
        );
        Placement {
            nodes: (0..ranks).map(|r| NodeId(r / 2)).collect(),
        }
    }

    /// The paper's cluster policy: single-process deployments up to
    /// `threshold` ranks, bi-processor deployments beyond.
    pub fn paper_cluster(topo: &Topology, ranks: usize, threshold: usize) -> Placement {
        if ranks <= threshold {
            Placement::one_per_node(topo, ranks)
        } else {
            Placement::two_per_node(topo, ranks)
        }
    }

    /// Block distribution across clusters: fill each cluster's nodes in
    /// order, one rank per node, overflowing into the next cluster.
    pub fn grid_blocks(topo: &Topology, ranks: usize) -> Placement {
        assert!(
            ranks <= topo.node_count(),
            "need {ranks} nodes, grid has {}",
            topo.node_count()
        );
        Placement {
            nodes: (0..ranks).map(NodeId).collect(),
        }
    }

    /// Explicit placement.
    pub fn explicit(nodes: Vec<NodeId>) -> Placement {
        Placement { nodes }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.nodes.len()
    }

    /// Node of a rank.
    pub fn node_of(&self, rank: Rank) -> NodeId {
        self.nodes[rank]
    }

    /// All rank nodes in rank order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Ranks co-located on the same node as `rank` (including itself).
    pub fn colocated(&self, rank: Rank) -> Vec<Rank> {
        let node = self.nodes[rank];
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| **n == node)
            .map(|(r, _)| r)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmpi_net::LinkConfig;

    #[test]
    fn one_per_node_is_identity() {
        let topo = Topology::single_cluster(8, LinkConfig::gige());
        let p = Placement::one_per_node(&topo, 8);
        assert_eq!(p.node_of(5), NodeId(5));
        assert_eq!(p.colocated(3), vec![3]);
    }

    #[test]
    fn two_per_node_shares_nics() {
        let topo = Topology::single_cluster(4, LinkConfig::gige());
        let p = Placement::two_per_node(&topo, 8);
        assert_eq!(p.node_of(0), NodeId(0));
        assert_eq!(p.node_of(1), NodeId(0));
        assert_eq!(p.node_of(7), NodeId(3));
        assert_eq!(p.colocated(0), vec![0, 1]);
    }

    #[test]
    fn paper_cluster_switches_at_threshold() {
        let topo = Topology::single_cluster(150, LinkConfig::gige());
        let small = Placement::paper_cluster(&topo, 144, 144);
        assert_eq!(small.node_of(143), NodeId(143));
        let big = Placement::paper_cluster(&topo, 169, 144);
        assert_eq!(big.node_of(168), NodeId(84));
    }

    #[test]
    #[should_panic(expected = "need")]
    fn overflow_rejected() {
        let topo = Topology::single_cluster(2, LinkConfig::gige());
        Placement::one_per_node(&topo, 3);
    }
}
