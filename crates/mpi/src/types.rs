//! Core vocabulary: ranks, tags, message envelopes.

use ftmpi_sim::SimTime;

/// An MPI rank (0-based).
pub type Rank = usize;

/// An MPI message tag.
pub type Tag = i32;

/// Wildcard source for receives.
pub const ANY_SOURCE: Option<Rank> = None;

/// Wildcard tag for receives.
pub const ANY_TAG: Option<Tag> = None;

/// Per-channel application message sequence number (assigned at send post,
/// used by tests to verify FIFO delivery and by logs for replay ordering).
pub type MsgSeq = u64;

/// A directed channel between two ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelKey {
    /// Sending rank.
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
}

/// An application message in flight (metadata only; the simulation tracks
/// sizes and timing, not payload contents — see DESIGN.md §5.3).
#[derive(Debug, Clone)]
pub struct AppMsg {
    /// Sending rank.
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
    /// MPI tag.
    pub tag: Tag,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Per-channel sequence number.
    pub seq: MsgSeq,
    /// Job epoch at send time (stale-epoch messages are dropped).
    pub epoch: u64,
    /// Virtual time the send was posted by the application.
    pub posted_at: SimTime,
}

impl AppMsg {
    /// The directed channel this message travels on.
    pub fn channel(&self) -> ChannelKey {
        ChannelKey {
            src: self.src,
            dst: self.dst,
        }
    }
}

/// What a completed receive reports back to the application.
#[derive(Debug, Clone, Copy)]
pub struct RecvInfo {
    /// Actual source rank.
    pub src: Rank,
    /// Actual tag.
    pub tag: Tag,
    /// Payload size in bytes.
    pub bytes: u64,
}

impl RecvInfo {
    /// Placeholder returned by skip-replayed receives (contents are never
    /// inspected by replayed code — those operations already ran before the
    /// checkpoint).
    pub fn replayed() -> RecvInfo {
        RecvInfo {
            src: 0,
            tag: 0,
            bytes: 0,
        }
    }
}
