//! The fault-tolerance protocol hook interface.
//!
//! These hooks correspond to the integration points the paper describes:
//!
//! * [`Protocol::on_send_post`] — MPICH2-Pcl adds "a hook in the request
//!   posting function for verifying and delaying these posts if a checkpoint
//!   wave is currently active";
//! * [`Protocol::on_arrival`] — MPICH-Vcl's daemon stores in-transit
//!   messages per Chandy–Lamport; Nemesis-Pcl copies packets from blocked
//!   processes into a delayed receive queue;
//! * [`Protocol::on_runtime_entry`] — in the blocking protocol, markers are
//!   only handled when the process is inside the MPI library (the progress
//!   engine runs); the non-blocking protocol handles them asynchronously in
//!   its separate daemon process and ignores this hook.

use std::any::Any;

use ftmpi_sim::SimCtx;

use crate::runtime::RuntimeCore;
use crate::types::{AppMsg, Rank};

/// Verdict of [`Protocol::on_send_post`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendAction {
    /// Inject the message into the network now.
    Proceed,
    /// The protocol took ownership of the message and will inject it later
    /// (blocking protocol during a checkpoint wave).
    Hold,
}

/// Verdict of [`Protocol::on_arrival`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalAction {
    /// Hand the message to the matching engine now.
    Deliver,
    /// The protocol took ownership (delayed receive queue) and will deliver
    /// it later.
    Hold,
}

/// Fault-tolerance protocol engine plugged into the runtime.
///
/// Implementations live in `ftmpi-core`; [`DummyProtocol`] (the paper's
/// "Vdummy" / plain runs) is provided here as the no-op baseline.
pub trait Protocol: Send {
    /// Short name used in reports ("dummy", "vcl", "pcl").
    fn name(&self) -> &'static str;

    /// A rank's application thread entered the runtime (any operation).
    /// Deferred control handling (blocking-protocol markers) happens here.
    fn on_runtime_entry(&mut self, rt: &mut RuntimeCore, sc: &SimCtx, rank: Rank);

    /// A rank just parked inside a blocking operation: its progress engine
    /// is now polling, so deferred control traffic can be handled even
    /// though the application is not issuing operations.
    fn on_progress_poll(&mut self, rt: &mut RuntimeCore, sc: &SimCtx, rank: Rank) {
        self.on_runtime_entry(rt, sc, rank);
    }

    /// An application send is about to be injected into the network.
    fn on_send_post(&mut self, rt: &mut RuntimeCore, sc: &SimCtx, msg: &AppMsg) -> SendAction;

    /// An application message arrived at the destination's runtime.
    fn on_arrival(&mut self, rt: &mut RuntimeCore, sc: &SimCtx, msg: &AppMsg) -> ArrivalAction;

    /// A rank's application code finished (rank reached `Mpi::finalize`).
    fn on_rank_finished(&mut self, rt: &mut RuntimeCore, sc: &SimCtx, rank: Rank) {
        let _ = (rt, sc, rank);
    }

    /// Downcast support so `ftmpi-core` controller events can reach their
    /// concrete protocol state through the type-erased world.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// No-fault-tolerance baseline: all hooks pass through.
///
/// Equivalent to the paper's Vdummy protocol / checkpoint-free executions.
#[derive(Debug, Default)]
pub struct DummyProtocol;

impl Protocol for DummyProtocol {
    fn name(&self) -> &'static str {
        "dummy"
    }

    fn on_runtime_entry(&mut self, _rt: &mut RuntimeCore, _sc: &SimCtx, _rank: Rank) {}

    fn on_send_post(&mut self, _rt: &mut RuntimeCore, _sc: &SimCtx, _msg: &AppMsg) -> SendAction {
        SendAction::Proceed
    }

    fn on_arrival(&mut self, _rt: &mut RuntimeCore, _sc: &SimCtx, _msg: &AppMsg) -> ArrivalAction {
        ArrivalAction::Deliver
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
