//! Integration tests for the MPI runtime: p2p semantics, FIFO channels,
//! matching, nonblocking ops, collectives and NIC-sharing effects.

use std::sync::Arc;

use parking_lot::Mutex;

use ftmpi_mpi::{
    app_fn, spawn_rank, AppFn, DummyProtocol, Placement, RuntimeConfig, RuntimeCore, World,
    WorldRef,
};
use ftmpi_net::{LinkConfig, NetModel, SoftwareStack, Topology};
use ftmpi_sim::{Sim, SimDuration, SimTime};

/// Run `app` on `nranks` ranks (one per node, GigE, TCP stack); returns the
/// job completion time and the world for post-run inspection.
fn run_app(nranks: usize, app: AppFn) -> (SimTime, WorldRef) {
    run_app_placed(nranks, nranks, false, app)
}

fn run_app_placed(
    nranks: usize,
    nodes: usize,
    two_per_node: bool,
    app: AppFn,
) -> (SimTime, WorldRef) {
    let topo = Topology::single_cluster(nodes, LinkConfig::gige());
    let placement = if two_per_node {
        Placement::two_per_node(&topo, nranks)
    } else {
        Placement::one_per_node(&topo, nranks)
    };
    let rt = RuntimeCore::new(
        NetModel::new(topo),
        placement,
        RuntimeConfig::for_stack(SoftwareStack::TcpSock),
    );
    let world = World::new_ref(rt, Box::new(DummyProtocol));
    let mut sim = Sim::new();
    let w2 = Arc::clone(&world);
    sim.schedule(SimTime::ZERO, move |sc| {
        for r in 0..nranks {
            spawn_rank(sc, &w2, r, Arc::clone(&app));
        }
    });
    let report = sim.run().expect("simulation failed");
    let completion = world
        .lock()
        .rt
        .stats
        .completion_time
        .expect("job did not complete");
    assert!(completion <= report.final_time);
    (completion, world)
}

#[test]
fn two_rank_ping_pong_round_trip_time() {
    let (t, world) = run_app(
        2,
        app_fn(|mut mpi| async move {
            if mpi.rank() == 0 {
                mpi.send(1, 7, 1000).await;
                mpi.recv(Some(1), Some(8)).await;
            } else {
                let info = mpi.recv(Some(0), Some(7)).await;
                assert_eq!(info.bytes, 1000);
                assert_eq!(info.src, 0);
                mpi.send(0, 8, 1000).await;
            }
            mpi
        }),
    );
    // Two one-way trips of a 1 kB message on GigE: dominated by 2×45 µs
    // latency plus overheads; must be far under a millisecond but nonzero.
    let secs = t.as_secs_f64();
    assert!(secs > 90e-6, "round trip too fast: {secs}");
    assert!(secs < 1e-3, "round trip too slow: {secs}");
    assert_eq!(world.lock().rt.stats.msgs_sent, 2);
}

#[test]
fn bandwidth_matches_link_rate_for_large_messages() {
    let bytes = 125_000_000; // 1 s at GigE rate
    let (t, _) = run_app(
        2,
        app_fn(move |mut mpi| async move {
            if mpi.rank() == 0 {
                mpi.send(1, 0, bytes).await;
            } else {
                mpi.recv(Some(0), Some(0)).await;
            }
            mpi
        }),
    );
    let secs = t.as_secs_f64();
    // Two store-and-forward NIC stages → ≈2 s end-to-end.
    assert!((1.9..2.2).contains(&secs), "bandwidth off: {secs}");
}

#[test]
fn per_channel_fifo_order_is_preserved() {
    let (_, _) = run_app(
        2,
        app_fn(|mut mpi| async move {
            const N: i32 = 40;
            if mpi.rank() == 0 {
                for i in 0..N {
                    // Mixed sizes try to tempt overtaking.
                    let bytes = if i % 3 == 0 { 1 << 18 } else { 64 };
                    mpi.send(1, i, bytes).await;
                }
            } else {
                for i in 0..N {
                    // Wildcard tag: must observe sends in order.
                    let info = mpi.recv(Some(0), None).await;
                    assert_eq!(info.tag, i, "FIFO violated");
                }
            }
            mpi
        }),
    );
}

#[test]
fn unexpected_messages_are_buffered() {
    let (_, _) = run_app(
        2,
        app_fn(|mut mpi| async move {
            if mpi.rank() == 0 {
                mpi.send(1, 1, 10).await;
                mpi.send(1, 2, 20).await;
            } else {
                // Receive in the opposite tag order: matching must search the
                // unexpected queue, not just its head.
                mpi.compute(SimDuration::from_millis(10)); // let both arrive
                let b = mpi.recv(Some(0), Some(2)).await;
                assert_eq!(b.bytes, 20);
                let a = mpi.recv(Some(0), Some(1)).await;
                assert_eq!(a.bytes, 10);
            }
            mpi
        }),
    );
}

#[test]
fn wildcard_source_receive() {
    let (_, _) = run_app(
        3,
        app_fn(|mut mpi| async move {
            if mpi.rank() == 2 {
                let mut got = [false; 2];
                for _ in 0..2 {
                    let info = mpi.recv(None, Some(5)).await;
                    got[info.src] = true;
                }
                assert!(got[0] && got[1]);
            } else {
                mpi.send(2, 5, 100).await;
            }
            mpi
        }),
    );
}

#[test]
fn irecv_wait_overlaps_compute() {
    let (t, _) = run_app(
        2,
        app_fn(|mut mpi| async move {
            if mpi.rank() == 0 {
                mpi.send(1, 3, 125_000_000).await; // ~1 s wire time
            } else {
                let req = mpi.irecv(Some(0), Some(3)).await;
                mpi.compute(SimDuration::from_secs(2)); // overlaps the transfer
                let info = mpi.wait(req).await;
                assert_eq!(info.bytes, 125_000_000);
            }
            mpi
        }),
    );
    // Compute (2 s) overlaps the ~2 s transfer: total ≈ max, not sum.
    let secs = t.as_secs_f64();
    assert!(secs < 3.0, "no overlap: {secs}");
    assert!(secs >= 2.0);
}

#[test]
fn wait_after_completion_is_cheap() {
    let (_, _) = run_app(
        2,
        app_fn(|mut mpi| async move {
            if mpi.rank() == 0 {
                mpi.send(1, 0, 8).await;
            } else {
                let req = mpi.irecv(Some(0), Some(0)).await;
                mpi.compute(SimDuration::from_secs(1)); // message arrives meanwhile
                let before = mpi.wtime();
                mpi.wait(req).await;
                let after = mpi.wtime();
                assert!(after - before < 1e-3, "wait blocked: {}", after - before);
            }
            mpi
        }),
    );
}

#[test]
fn barrier_synchronizes_ranks() {
    let times: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let t2 = Arc::clone(&times);
    let (_, _) = run_app(
        8,
        app_fn(move |mut mpi| {
            let t2 = Arc::clone(&t2);
            async move {
                // Rank r computes r seconds, then all meet at a barrier.
                mpi.compute(SimDuration::from_secs(mpi.rank() as u64));
                mpi.barrier().await;
                t2.lock().push(mpi.wtime());
                mpi
            }
        }),
    );
    let times = times.lock();
    let min = times.iter().cloned().fold(f64::MAX, f64::min);
    let max = times.iter().cloned().fold(0.0, f64::max);
    assert!(min >= 7.0, "barrier exited before slowest rank: {min}");
    assert!(max - min < 0.01, "barrier skewed: {min}..{max}");
}

#[test]
fn collectives_complete_on_nonpowers_of_two() {
    for n in [3usize, 5, 6, 7, 9] {
        let (_, _) = run_app(
            n,
            app_fn(|mut mpi| async move {
                mpi.bcast(0, 4096).await;
                mpi.reduce(0, 4096).await;
                mpi.allreduce(4096).await;
                mpi.allgather(1024).await;
                mpi.alltoall(512).await;
                mpi.gather(0, 2048).await;
                mpi.scatter(0, 2048).await;
                mpi.barrier().await;
                mpi
            }),
        );
    }
}

#[test]
fn bcast_message_count_is_n_minus_one() {
    let (_, world) = run_app(
        16,
        app_fn(|mut mpi| async move {
            mpi.bcast(3, 1 << 20).await;
            mpi
        }),
    );
    assert_eq!(world.lock().rt.stats.msgs_sent, 15);
}

#[test]
fn allreduce_recursive_doubling_message_count() {
    let (_, world) = run_app(
        8,
        app_fn(|mut mpi| async move {
            mpi.allreduce(1024).await;
            mpi
        }),
    );
    // log2(8)=3 rounds × 8 ranks, one send each.
    assert_eq!(world.lock().rt.stats.msgs_sent, 24);
}

#[test]
fn nic_sharing_slows_colocated_ranks() {
    // 4 ranks exchanging big messages pairwise: with 2 ranks/node the pairs
    // share NICs and the exchange takes about twice as long.
    let app = app_fn(|mut mpi| async move {
        let n = mpi.size();
        let partner = (mpi.rank() + n / 2) % n;
        let tag = 9;
        mpi.sendrecv(partner, tag, 62_500_000, Some(partner), Some(tag))
            .await;
        mpi
    });
    let (t_separate, _) = run_app_placed(4, 4, false, Arc::clone(&app));
    let (t_shared, _) = run_app_placed(4, 2, true, app);
    let ratio = t_shared.as_secs_f64() / t_separate.as_secs_f64();
    assert!(ratio > 1.4, "NIC sharing should slow the exchange: {ratio}");
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let (t, world) = run_app(
            6,
            app_fn(|mut mpi| async move {
                mpi.allreduce(10_000).await;
                mpi.compute(SimDuration::from_millis(5));
                mpi.alltoall(2_000).await;
                mpi.barrier().await;
                mpi
            }),
        );
        let msgs = world.lock().rt.stats.msgs_sent;
        (t.as_nanos(), msgs)
    };
    assert_eq!(run(), run());
}

#[test]
fn wtime_advances_with_compute() {
    let (_, _) = run_app(
        1,
        app_fn(|mut mpi| async move {
            let t0 = mpi.wtime();
            mpi.compute(SimDuration::from_secs(3));
            let t1 = mpi.wtime();
            assert!((t1 - t0 - 3.0).abs() < 1e-9);
            mpi
        }),
    );
}

#[test]
fn self_send_via_loopback() {
    let (t, _) = run_app(
        1,
        app_fn(|mut mpi| async move {
            let req = mpi.irecv(Some(0), Some(1)).await;
            mpi.send(0, 1, 1 << 20).await;
            let info = mpi.wait(req).await;
            assert_eq!(info.bytes, 1 << 20);
            mpi
        }),
    );
    assert!(t.as_secs_f64() < 0.01, "loopback too slow: {t}");
}

#[test]
fn larger_job_completes_with_many_ranks() {
    let (_, world) = run_app(
        64,
        app_fn(|mut mpi| async move {
            mpi.allreduce(8192).await;
            mpi.barrier().await;
            mpi
        }),
    );
    let w = world.lock();
    assert_eq!(w.rt.stats.finished_ranks, 64);
}

#[test]
fn shift_moves_data_around_a_ring() {
    let (t, world) = run_app(
        4,
        app_fn(|mut mpi| async move {
            let n = mpi.size();
            let right = (mpi.rank() + 1) % n;
            let left = (mpi.rank() + n - 1) % n;
            for lap in 0..3 {
                let info = mpi.shift(right, left, lap, 10_000).await;
                assert_eq!(info.src, left);
                assert_eq!(info.bytes, 10_000);
            }
            mpi
        }),
    );
    // 3 laps × 4 ranks, one message each.
    assert_eq!(world.lock().rt.stats.msgs_sent, 12);
    assert!(t.as_secs_f64() < 0.01);
}

#[test]
fn shift_equals_sendrecv_semantics() {
    // The fused op and the three-op sequence deliver the same messages.
    let run = |fused: bool| {
        let (t, world) = run_app(
            6,
            app_fn(move |mut mpi| async move {
                let n = mpi.size();
                let right = (mpi.rank() + 1) % n;
                let left = (mpi.rank() + n - 1) % n;
                for lap in 0..5 {
                    if fused {
                        mpi.shift(right, left, lap, 4_096).await;
                    } else {
                        mpi.sendrecv(right, lap, 4_096, Some(left), Some(lap)).await;
                    }
                }
                mpi
            }),
        );
        let msgs = world.lock().rt.stats.msgs_sent;
        (t, msgs)
    };
    let (t_fused, m_fused) = run(true);
    let (t_slow, m_slow) = run(false);
    assert_eq!(m_fused, m_slow);
    // Same virtual timing up to the per-op overhead difference.
    assert!((t_fused.as_secs_f64() - t_slow.as_secs_f64()).abs() < 1e-3);
}

#[test]
fn exchange_is_symmetric() {
    let (_, _) = run_app(
        2,
        app_fn(|mut mpi| async move {
            let peer = 1 - mpi.rank();
            let info = mpi.exchange(peer, 7, 1 << 16).await;
            assert_eq!(info.src, peer);
            assert_eq!(info.bytes, 1 << 16);
            mpi
        }),
    );
}
