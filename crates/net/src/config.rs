//! Link, WAN and software-stack parameter sets.
//!
//! Default values are order-of-magnitude calibrations for the paper's
//! platforms (2 GHz Opteron 248 nodes, Gigabit-Ethernet, Myrinet2000
//! M3-E64 + Lanai XP NICs, Renater inter-cluster links, SATA disks, 2006
//! software stacks). Absolute numbers are not meant to match the testbed;
//! the *ratios* that drive the paper's conclusions are.

use ftmpi_sim::SimDuration;

/// Intra-cluster link parameters (one per cluster).
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// NIC bandwidth per direction, bytes/second.
    pub nic_bw: f64,
    /// One-way wire + switch latency inside a cluster.
    pub latency: SimDuration,
    /// Local disk streaming bandwidth, bytes/second (checkpoint files).
    pub disk_bw: f64,
    /// Shared-memory loopback bandwidth for ranks on the same node.
    pub loopback_bw: f64,
    /// Loopback latency (one memcpy handoff).
    pub loopback_latency: SimDuration,
}

impl LinkConfig {
    /// Gigabit-Ethernet cluster (Orsay-like): 1 Gb/s, ~45 µs TCP one-way.
    pub fn gige() -> LinkConfig {
        LinkConfig {
            nic_bw: 125e6,
            latency: SimDuration::from_micros(45),
            disk_bw: 60e6,
            loopback_bw: 1.2e9,
            loopback_latency: SimDuration::from_micros(2),
        }
    }

    /// Myrinet2000 cluster (Bordeaux-like): 2 Gb/s links.
    /// This is the *physical* link; per-message software costs are in
    /// [`StackProfile`] (TCP emulation vs. GM OS-bypass differ hugely).
    pub fn myrinet2000() -> LinkConfig {
        LinkConfig {
            nic_bw: 250e6,
            latency: SimDuration::from_micros(4),
            disk_bw: 60e6,
            loopback_bw: 1.2e9,
            loopback_latency: SimDuration::from_micros(2),
        }
    }
}

/// Inter-cluster (grid) link parameters.
#[derive(Debug, Clone)]
pub struct WanConfig {
    /// Capacity of each cluster's access pipe (shared by all of the
    /// cluster's inter-cluster flows), bytes/second.
    pub access_bw: f64,
    /// Throughput a single flow achieves across the WAN, bytes/second.
    /// NetPIPE in §5.4 observed intra-cluster ≈20× faster than
    /// inter-cluster, hence the default `nic_bw / 20`.
    pub per_flow_bw: f64,
    /// One-way inter-cluster latency (≈2 orders of magnitude above the
    /// intra-cluster latency per §5.4).
    pub latency: SimDuration,
}

impl WanConfig {
    /// Renater-like defaults matching the paper's NetPIPE observations.
    pub fn renater() -> WanConfig {
        WanConfig {
            access_bw: 125e6,
            per_flow_bw: 125e6 / 20.0,
            latency: SimDuration::from_millis(5),
        }
    }

    /// Placeholder for single-cluster platforms (never exercised).
    pub fn unused() -> WanConfig {
        WanConfig {
            access_bw: 0.0,
            per_flow_bw: 0.0,
            latency: SimDuration::ZERO,
        }
    }
}

/// Which communication software stack carries MPI messages.
///
/// These mirror the implementations compared in the paper:
/// * `TcpSock` — MPICH2 `sock`-style TCP channel (Pcl – Socket).
/// * `VclDaemon` — MPICH-V `ch_v` device: every message crosses two extra
///   Unix sockets through the communication daemon, adding copies and
///   latency (the paper's explanation for Vcl losing on Myrinet, §5.3).
/// * `NemesisGm` — MPICH2 Nemesis channel over GM: OS-bypass, lowest
///   latency (Pcl – Nemesis/GM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoftwareStack {
    /// TCP sockets (works on GigE or as Ethernet emulation on Myrinet).
    TcpSock,
    /// TCP plus the MPICH-V communication-daemon indirection.
    VclDaemon,
    /// OS-bypass user-level networking (Myrinet GM via Nemesis).
    NemesisGm,
}

/// Per-message software costs of a [`SoftwareStack`].
#[derive(Debug, Clone)]
pub struct StackProfile {
    /// Sender-side CPU time per message (posting, packetizing).
    pub send_overhead: SimDuration,
    /// Receiver-side CPU time per message (matching, completion).
    pub recv_overhead: SimDuration,
    /// Extra one-way latency added by the stack (kernel crossings,
    /// daemon hops).
    pub added_latency: SimDuration,
    /// Extra per-byte cost of additional memory copies (seconds/byte);
    /// the Vcl daemon performs two extra copies per message.
    pub copy_cost_per_byte: f64,
}

impl StackProfile {
    /// Costs for `stack` when run over the given physical link kind.
    pub fn for_stack(stack: SoftwareStack) -> StackProfile {
        match stack {
            SoftwareStack::TcpSock => StackProfile {
                // Kernel socket buffers: one copy per side.
                send_overhead: SimDuration::from_micros(4),
                recv_overhead: SimDuration::from_micros(4),
                added_latency: SimDuration::from_micros(8),
                copy_cost_per_byte: 1.0e-9,
            },
            SoftwareStack::VclDaemon => StackProfile {
                // A Unix-socket hop on each side of the TCP path — two extra
                // copies per side: the paper calls these "unnecessary copies
                // and a high latency overhead" for latency-bound benchmarks.
                send_overhead: SimDuration::from_micros(7),
                recv_overhead: SimDuration::from_micros(7),
                added_latency: SimDuration::from_micros(60),
                copy_cost_per_byte: 4.5e-9,
            },
            SoftwareStack::NemesisGm => StackProfile {
                send_overhead: SimDuration::from_micros(1),
                recv_overhead: SimDuration::from_micros(1),
                added_latency: SimDuration::from_micros(2),
                copy_cost_per_byte: 0.0,
            },
        }
    }

    /// Total extra one-way delay this stack adds to a message of `bytes`.
    pub fn message_penalty(&self, bytes: u64) -> SimDuration {
        self.added_latency + SimDuration::from_secs_f64(self.copy_cost_per_byte * bytes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_latency_ordering_matches_paper() {
        // Nemesis/GM < TCP sock < Vcl daemon for small messages.
        let nem = StackProfile::for_stack(SoftwareStack::NemesisGm).message_penalty(64);
        let tcp = StackProfile::for_stack(SoftwareStack::TcpSock).message_penalty(64);
        let vcl = StackProfile::for_stack(SoftwareStack::VclDaemon).message_penalty(64);
        assert!(nem < tcp, "{nem:?} !< {tcp:?}");
        assert!(tcp < vcl, "{tcp:?} !< {vcl:?}");
    }

    #[test]
    fn daemon_copy_cost_grows_with_size() {
        let p = StackProfile::for_stack(SoftwareStack::VclDaemon);
        assert!(p.message_penalty(1 << 20) > p.message_penalty(64));
    }

    #[test]
    fn wan_is_twenty_times_slower_per_flow() {
        let link = LinkConfig::gige();
        let wan = WanConfig::renater();
        let ratio = link.nic_bw / wan.per_flow_bw;
        assert!((19.0..21.0).contains(&ratio), "ratio {ratio}");
        // ~two orders of magnitude latency gap.
        let lat_ratio = wan.latency.as_secs_f64() / link.latency.as_secs_f64();
        assert!(lat_ratio > 50.0, "latency ratio {lat_ratio}");
    }
}
