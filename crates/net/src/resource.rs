//! Serialized transmission resources (NIC queues, disks, WAN pipes).

use ftmpi_sim::{SimDuration, SimTime};

/// A resource that serializes transfers: one transfer occupies it for
/// `bytes / capacity` and later transfers queue FIFO behind it.
///
/// The *occupancy* rate (`capacity_bps`, shared-link capacity) can differ
/// from the *per-flow* rate a single transfer experiences (TCP over a WAN
/// path achieves far less than the access-link capacity): see
/// [`reserve_with_rate`](Resource::reserve_with_rate).
#[derive(Debug, Clone)]
pub struct Resource {
    capacity_bps: f64,
    busy_until: SimTime,
    /// Total bytes that passed through (for utilisation reporting).
    bytes_total: u64,
    /// Accumulated busy time (for utilisation reporting).
    busy_time: SimDuration,
    /// Number of reservations (including bypasses) ever made. A monotonic
    /// contention probe: two snapshots differ by exactly the traffic that
    /// touched the resource in between, regardless of message size or
    /// which reservation path it took.
    touches: u64,
}

impl Resource {
    /// Create a resource with the given capacity in bytes/second.
    /// A non-positive capacity means "infinitely fast" (stage disabled).
    pub fn new(capacity_bps: f64) -> Resource {
        Resource {
            capacity_bps,
            busy_until: SimTime::ZERO,
            bytes_total: 0,
            busy_time: SimDuration::ZERO,
            touches: 0,
        }
    }

    /// Capacity in bytes/second (0 = infinite).
    pub fn capacity_bps(&self) -> f64 {
        self.capacity_bps
    }

    /// Earliest instant a new transfer could start.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Reserve the resource for `bytes` starting no earlier than `earliest`.
    /// Returns `(start, finish)` where `finish - start = bytes / capacity`.
    pub fn reserve(&mut self, earliest: SimTime, bytes: u64) -> (SimTime, SimTime) {
        self.reserve_with_rate(earliest, bytes, self.capacity_bps)
    }

    /// Reserve with a distinct per-flow rate: the transfer *finishes* after
    /// `bytes / flow_bps`, but only *occupies* the shared resource for
    /// `bytes / capacity` (other flows may start once the occupancy window
    /// ends). `flow_bps` is clamped to the capacity when the capacity is
    /// finite.
    pub fn reserve_with_rate(
        &mut self,
        earliest: SimTime,
        bytes: u64,
        flow_bps: f64,
    ) -> (SimTime, SimTime) {
        let start = earliest.max(self.busy_until);
        let occupancy = SimDuration::for_transfer(bytes, self.capacity_bps);
        let flow_rate = if self.capacity_bps > 0.0 {
            flow_bps.min(self.capacity_bps)
        } else {
            flow_bps
        };
        let duration = SimDuration::for_transfer(bytes, flow_rate).max(occupancy);
        self.busy_until = start + occupancy;
        self.bytes_total = self.bytes_total.saturating_add(bytes);
        self.busy_time += occupancy;
        self.touches += 1;
        (start, start + duration)
    }

    /// Pass-through for small control-sized messages: models packet-level
    /// interleaving through a busy resource. The message pays only its own
    /// transmission time and does not occupy the queue (its occupancy is a
    /// single MTU — negligible). FIFO *per channel* is enforced separately
    /// by the path model.
    pub fn bypass(&mut self, earliest: SimTime, bytes: u64) -> (SimTime, SimTime) {
        let duration = SimDuration::for_transfer(bytes, self.capacity_bps);
        self.bytes_total = self.bytes_total.saturating_add(bytes);
        self.touches += 1;
        (earliest, earliest + duration)
    }

    /// Total bytes ever reserved through this resource.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    /// Number of reservations (including bypasses) ever made.
    pub fn touches(&self) -> u64 {
        self.touches
    }

    /// Accumulated occupancy time.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Reset queueing state (used when a platform is rebooted after a
    /// failure-restart; counters are preserved).
    pub fn reset_queue(&mut self, now: SimTime) {
        self.busy_until = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_serialize_fifo() {
        let mut r = Resource::new(100.0); // 100 B/s
        let (s1, e1) = r.reserve(SimTime::ZERO, 100); // 1s
        let (s2, e2) = r.reserve(SimTime::ZERO, 50); // queued behind
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(e1.as_secs_f64(), 1.0);
        assert_eq!(s2, e1);
        assert_eq!(e2.as_secs_f64(), 1.5);
    }

    #[test]
    fn idle_gap_is_respected() {
        let mut r = Resource::new(100.0);
        r.reserve(SimTime::ZERO, 100);
        // Arrives after the queue drained: starts at its own arrival.
        let (s, e) = r.reserve(SimTime::from_nanos(5_000_000_000), 100);
        assert_eq!(s.as_secs_f64(), 5.0);
        assert_eq!(e.as_secs_f64(), 6.0);
    }

    #[test]
    fn infinite_capacity_is_instant() {
        let mut r = Resource::new(0.0);
        let (s, e) = r.reserve(SimTime::from_nanos(42), 1 << 30);
        assert_eq!(s, e);
        assert_eq!(s.as_nanos(), 42);
    }

    #[test]
    fn flow_rate_slower_than_capacity() {
        let mut r = Resource::new(1000.0);
        // 1000 bytes at a 100 B/s flow: finishes at 10s but occupies only 1s.
        let (s1, e1) = r.reserve_with_rate(SimTime::ZERO, 1000, 100.0);
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(e1.as_secs_f64(), 10.0);
        // Next flow can start after the 1s occupancy window.
        let (s2, _) = r.reserve_with_rate(SimTime::ZERO, 1000, 100.0);
        assert_eq!(s2.as_secs_f64(), 1.0);
    }

    #[test]
    fn flow_rate_clamped_to_capacity() {
        let mut r = Resource::new(100.0);
        let (_, e) = r.reserve_with_rate(SimTime::ZERO, 100, 1e12);
        assert_eq!(e.as_secs_f64(), 1.0);
    }

    #[test]
    fn accounting_accumulates() {
        let mut r = Resource::new(100.0);
        r.reserve(SimTime::ZERO, 100);
        r.reserve(SimTime::ZERO, 300);
        assert_eq!(r.bytes_total(), 400);
        assert_eq!(r.busy_time().as_secs_f64(), 4.0);
    }

    #[test]
    fn touches_count_every_reservation_path() {
        let mut r = Resource::new(100.0);
        assert_eq!(r.touches(), 0);
        r.reserve(SimTime::ZERO, 100);
        r.reserve_with_rate(SimTime::ZERO, 100, 50.0);
        r.bypass(SimTime::ZERO, 8);
        assert_eq!(r.touches(), 3);
        r.reset_queue(SimTime::ZERO);
        assert_eq!(r.touches(), 3, "reset preserves counters");
    }

    #[test]
    fn reset_queue_clears_backlog() {
        let mut r = Resource::new(1.0);
        r.reserve(SimTime::ZERO, 1_000_000); // huge backlog
        r.reset_queue(SimTime::from_nanos(7));
        let (s, _) = r.reserve(SimTime::ZERO, 1);
        assert_eq!(s.as_nanos(), 7);
    }
}
