//! Network resource / topology model for the `ftmpi` simulation.
//!
//! This crate models the three experimental platforms of the paper —
//! Gigabit-Ethernet clusters, Myrinet clusters, and a multi-cluster grid —
//! as a hierarchy of *serialized resources*:
//!
//! * per-node NIC transmit and receive queues (full duplex),
//! * per-node local disk,
//! * per-cluster WAN uplink and downlink.
//!
//! A message reserves each resource along its path in order
//! (store-and-forward at message granularity), which yields the first-order
//! effects the paper's evaluation hinges on: bandwidth contention between
//! checkpoint-image streams and MPI traffic on a node's NIC, checkpoint
//! *server* NICs as the bottleneck when few servers are deployed (Fig. 5),
//! NIC sharing between the two ranks of a dual-processor node (the dip above
//! 144 processes in Fig. 6), and the ≈20× lower bandwidth / ≈100× higher
//! latency of inter-cluster grid links (§5.4).
//!
//! The model is *passive*: it computes reservation times but schedules
//! nothing. The MPI runtime and the checkpointing protocols own the event
//! scheduling and call into [`NetModel`] under their own state lock. The
//! same passivity extends to faults ([`fault`]): the model holds the
//! current link/partition state and answers
//! [`reachable`](NetModel::reachable); callers pause and retry rather than
//! lose traffic.

#![warn(missing_docs)]

mod config;
pub mod fault;
mod model;
mod resource;
mod topology;

pub use config::{LinkConfig, SoftwareStack, StackProfile, WanConfig};
pub use fault::{
    fault_lane, CutDirection, FaultPlanError, LinkFaultEvent, LinkFaultKind, LinkFlapSpec,
    NetFaultPlan, PartitionSpec, ServerPartitionSpec, FAULT_LANE_BASE,
};
pub use model::{Delivery, NetModel, PathKind, SMALL_BYPASS_BYTES};
pub use resource::Resource;
pub use topology::{ClusterId, ClusterSpec, NodeId, Topology, TopologySpec};
