//! Scheduled network faults: directed link events and named partitions.
//!
//! The fault model is *declarative*: a [`NetFaultPlan`] lists transitions
//! (link down / degrade / restore, partition start / heal) with their times,
//! and the owning layer schedules them onto the simulation's event queue.
//! [`crate::NetModel`] only holds the *current* fault state and answers
//! [`reachable`](crate::NetModel::reachable) queries; it never drops traffic
//! by itself. Callers (flow chunking, heartbeats, restore fetches) check
//! reachability before reserving a path and pause-and-retry when the answer
//! is no — a partition therefore *delays* in-flight traffic rather than
//! silently losing it.
//!
//! Link-state machine (per directed pair):
//!
//! ```text
//!        down                degrade(f)
//!   Up ───────▶ Down     Up ───────────▶ Degraded(f)
//!    ▲            │       ▲                  │
//!    └──restore───┘       └────restore───────┘
//! ```
//!
//! `restore` always returns a link to full-rate `Up`, whichever fault state
//! it was in. A `degrade` while `Down` records the factor but the link stays
//! unreachable until restored. Partitions are independent of link state: a
//! pair is reachable iff no `down` edge covers it *and* no active partition
//! separates the two endpoints.

use ftmpi_sim::SimTime;

use crate::topology::NodeId;

/// Tiebreak-lane namespace for scheduled fault transitions. Fault events
/// race with every flow chunk and retry probe touching the same link, so
/// they are always scheduled keyed; the base is disjoint from the flow-lane
/// namespace (`1 << 63 | server_node`) and from process lanes (small
/// integers) for every realistic node count.
pub const FAULT_LANE_BASE: u64 = 0b11 << 62;

/// The tiebreak lane for the `idx`-th scheduled fault transition of a plan.
pub fn fault_lane(idx: u64) -> u64 {
    FAULT_LANE_BASE | idx
}

/// What a scheduled link transition does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkFaultKind {
    /// The directed link stops carrying traffic (cable pull, NIC death).
    Down,
    /// The directed link keeps working at `1/factor` of its rated bandwidth
    /// (flapping switch port, congested backbone). Factors are clamped to
    /// at least `1.0`; only bulk traffic slows down — small control
    /// messages still bypass at packet granularity.
    Degrade(f64),
    /// The directed link returns to full-rate service.
    Restore,
}

/// One scheduled directed-link transition.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaultEvent {
    /// Simulated time the transition applies.
    pub at: SimTime,
    /// Transmitting endpoint of the directed link.
    pub from: NodeId,
    /// Receiving endpoint of the directed link.
    pub to: NodeId,
    /// The transition.
    pub kind: LinkFaultKind,
}

/// A named partition window: every node in `nodes` is cut off from every
/// node outside the set from `start` until `heal` (`None` = the partition
/// outlives the job). Traffic *within* the set, and within the complement,
/// is unaffected — this models a switch or WAN cut, not node death.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    /// Human-readable name, used in traces and scenario reports.
    pub name: String,
    /// The node set split off from the rest of the platform.
    pub nodes: Vec<NodeId>,
    /// When the cut happens.
    pub start: SimTime,
    /// When the cut heals; `None` leaves it in place forever.
    pub heal: Option<SimTime>,
}

/// The full fault schedule attached to a job. The default (empty) plan
/// schedules nothing and leaves every existing code path byte-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetFaultPlan {
    /// Directed link transitions, in schedule order.
    pub link_events: Vec<LinkFaultEvent>,
    /// Named partition windows.
    pub partitions: Vec<PartitionSpec>,
}

impl NetFaultPlan {
    /// An empty plan: no faults, nothing scheduled.
    pub fn none() -> NetFaultPlan {
        NetFaultPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.link_events.is_empty() && self.partitions.is_empty()
    }

    /// Number of kernel transitions this plan schedules (each partition
    /// costs one for the cut plus one for the heal when it has one).
    pub fn transition_count(&self) -> usize {
        self.link_events.len()
            + self
                .partitions
                .iter()
                .map(|p| 1 + usize::from(p.heal.is_some()))
                .sum::<usize>()
    }

    /// Schedule a directed link going down at `at`.
    pub fn with_link_down(mut self, at: SimTime, from: NodeId, to: NodeId) -> NetFaultPlan {
        self.link_events.push(LinkFaultEvent {
            at,
            from,
            to,
            kind: LinkFaultKind::Down,
        });
        self
    }

    /// Schedule a directed link degrading to `1/factor` bandwidth at `at`.
    pub fn with_link_degrade(
        mut self,
        at: SimTime,
        from: NodeId,
        to: NodeId,
        factor: f64,
    ) -> NetFaultPlan {
        self.link_events.push(LinkFaultEvent {
            at,
            from,
            to,
            kind: LinkFaultKind::Degrade(factor),
        });
        self
    }

    /// Schedule a directed link returning to full service at `at`.
    pub fn with_link_restore(mut self, at: SimTime, from: NodeId, to: NodeId) -> NetFaultPlan {
        self.link_events.push(LinkFaultEvent {
            at,
            from,
            to,
            kind: LinkFaultKind::Restore,
        });
        self
    }

    /// Schedule a named partition window.
    pub fn with_partition(
        mut self,
        name: impl Into<String>,
        nodes: Vec<NodeId>,
        start: SimTime,
        heal: Option<SimTime>,
    ) -> NetFaultPlan {
        self.partitions.push(PartitionSpec {
            name: name.into(),
            nodes,
            start,
            heal,
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmpi_sim::SimDuration;

    #[test]
    fn empty_plan_is_empty() {
        let p = NetFaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.transition_count(), 0);
    }

    #[test]
    fn builders_accumulate_and_count_transitions() {
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        let p = NetFaultPlan::none()
            .with_link_down(t(1), NodeId(0), NodeId(1))
            .with_link_degrade(t(2), NodeId(1), NodeId(2), 4.0)
            .with_link_restore(t(3), NodeId(0), NodeId(1))
            .with_partition("switch-a", vec![NodeId(0), NodeId(1)], t(4), Some(t(6)))
            .with_partition("forever", vec![NodeId(2)], t(5), None);
        assert!(!p.is_empty());
        assert_eq!(p.link_events.len(), 3);
        assert_eq!(p.partitions.len(), 2);
        // 3 link events + (cut + heal) + (cut only).
        assert_eq!(p.transition_count(), 6);
        assert_eq!(p.partitions[0].name, "switch-a");
        assert_eq!(
            p.link_events[1].kind,
            LinkFaultKind::Degrade(4.0),
            "degrade factor carried through"
        );
    }

    #[test]
    fn fault_lanes_stay_in_their_namespace() {
        assert_ne!(FAULT_LANE_BASE, 1 << 63, "disjoint from flow lanes");
        assert_eq!(fault_lane(5), FAULT_LANE_BASE | 5);
    }
}
