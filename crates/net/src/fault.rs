//! Scheduled network faults: directed link events, flapping processes, and
//! named (possibly one-directional) partitions.
//!
//! The fault model is *declarative*: a [`NetFaultPlan`] lists transitions
//! (link down / degrade / restore, partition start / heal) with their times,
//! and the owning layer schedules them onto the simulation's event queue.
//! [`crate::NetModel`] only holds the *current* fault state and answers
//! [`reachable`](crate::NetModel::reachable) queries; it never drops traffic
//! by itself. Callers (flow chunking, heartbeats, restore fetches) check
//! reachability before reserving a path and pause-and-retry when the answer
//! is no — a partition therefore *delays* in-flight traffic rather than
//! silently losing it.
//!
//! Link-state machine (per directed pair):
//!
//! ```text
//!        down                degrade(f)
//!   Up ───────▶ Down     Up ───────────▶ Degraded(f)
//!    ▲            │       ▲                  │
//!    └──restore───┘       └────restore───────┘
//! ```
//!
//! `restore` always returns a link to full-rate `Up`, whichever fault state
//! it was in. A `degrade` while `Down` records the factor but the link stays
//! unreachable until restored. Partitions are independent of link state: a
//! pair is reachable iff no `down` edge covers it *and* no active partition
//! cuts the pair in that direction (see [`CutDirection`]).
//!
//! On top of explicit events, a [`LinkFlapSpec`] describes a *renewal
//! process*: within its window the directed link alternates exponentially
//! distributed up (MTTF) and down (MTTR) intervals, drawn from a seeded
//! splitmix64 stream. Flaps expand to plain `Down`/`Restore` events at
//! plan-schedule time ([`NetFaultPlan::expanded_link_events`]), so the
//! kernel sees only the three-state machine above and the expansion is a
//! pure function of the spec — byte-identical across runs and backends.

use std::fmt;

use ftmpi_sim::{SimDuration, SimTime};

use crate::topology::NodeId;

/// Tiebreak-lane namespace for scheduled fault transitions. Fault events
/// race with every flow chunk and retry probe touching the same link, so
/// they are always scheduled keyed; the base is disjoint from the flow-lane
/// namespace (`1 << 63 | server_node`) and from process lanes (small
/// integers) for every realistic node count.
pub const FAULT_LANE_BASE: u64 = 0b11 << 62;

/// The tiebreak lane for the `idx`-th scheduled fault transition of a plan.
pub fn fault_lane(idx: u64) -> u64 {
    FAULT_LANE_BASE | idx
}

/// What a scheduled link transition does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkFaultKind {
    /// The directed link stops carrying traffic (cable pull, NIC death).
    Down,
    /// The directed link keeps working at `1/factor` of its rated bandwidth
    /// (flapping switch port, congested backbone). Factors are clamped to
    /// at least `1.0`; only bulk traffic slows down — small control
    /// messages still bypass at packet granularity.
    Degrade(f64),
    /// The directed link returns to full-rate service.
    Restore,
}

/// One scheduled directed-link transition.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaultEvent {
    /// Simulated time the transition applies.
    pub at: SimTime,
    /// Transmitting endpoint of the directed link.
    pub from: NodeId,
    /// Receiving endpoint of the directed link.
    pub to: NodeId,
    /// The transition.
    pub kind: LinkFaultKind,
}

/// Which direction of traffic a partition cuts, relative to the named node
/// set.
///
/// `Both` is the classic switch cut: nothing crosses the boundary either
/// way. The directed variants model asymmetric failures — a half-open
/// firewall rule, a broken return path, a congested uplink that still
/// receives — where data can cross one way while acknowledgements die on
/// the way back. Transport layers must not commit state across a half-open
/// cut: a push whose ack cannot return looks exactly like a lost push.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CutDirection {
    /// Traffic is cut in both directions (classic symmetric partition).
    #[default]
    Both,
    /// Traffic *from* the named set to the rest is cut; traffic into the
    /// set still flows.
    Outbound,
    /// Traffic *into* the named set is cut; traffic out of the set still
    /// flows.
    Inbound,
}

impl fmt::Display for CutDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CutDirection::Both => "both",
            CutDirection::Outbound => "outbound",
            CutDirection::Inbound => "inbound",
        })
    }
}

/// A named partition window: nodes in `nodes` are cut off from nodes outside
/// the set from `start` until `heal` (`None` = the partition outlives the
/// job), in the direction(s) given by `direction`. Traffic *within* the set,
/// and within the complement, is unaffected — this models a switch or WAN
/// cut, not node death.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    /// Human-readable name, used in traces and scenario reports.
    pub name: String,
    /// The node set split off from the rest of the platform.
    pub nodes: Vec<NodeId>,
    /// Which direction(s) of boundary-crossing traffic the cut kills.
    pub direction: CutDirection,
    /// When the cut happens.
    pub start: SimTime,
    /// When the cut heals; `None` leaves it in place forever.
    pub heal: Option<SimTime>,
    /// When set, checkpoint-image flows caught mid-stream by the cut leave
    /// a *torn* (truncated, digest-failing) replica on the destination
    /// server instead of cleanly pausing. Models a storage write severed
    /// partway through. Off by default: plain partitions delay traffic
    /// without damaging anything.
    pub tear: bool,
}

/// A partition isolating a *checkpoint-server group* from the rest of the
/// platform. Servers are named by fleet index (position in the deployment's
/// server list), not by node, because the spec is built before placement is
/// decided; the runner resolves indices to nodes and schedules the result as
/// an ordinary [`PartitionSpec`]. This is the shape that exercises replica
/// walks and retained-wave fallback: the ranks stay connected to each other
/// and to the service node, but a slice of the image store goes dark.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerPartitionSpec {
    /// Human-readable name, used in traces and scenario reports.
    pub name: String,
    /// Checkpoint-server fleet indices to isolate.
    pub servers: Vec<usize>,
    /// Which direction(s) of traffic the cut kills, relative to the server
    /// set.
    pub direction: CutDirection,
    /// When the cut happens.
    pub start: SimTime,
    /// When the cut heals; `None` leaves it in place forever.
    pub heal: Option<SimTime>,
    /// Tear image flows severed by the cut (see [`PartitionSpec::tear`]).
    pub tear: bool,
}

/// A seeded up/down renewal process on one directed link: starting at
/// `start`, the link alternates exponentially distributed up intervals
/// (mean `mttf`) and down intervals (mean `mttr`) until `end`, at which
/// point it is unconditionally restored. Expansion to concrete
/// `Down`/`Restore` events is a pure function of the spec (splitmix64
/// stream keyed by `seed`, `from`, and `to`), so two runs of the same plan
/// see the identical schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFlapSpec {
    /// Transmitting endpoint of the flapping directed link.
    pub from: NodeId,
    /// Receiving endpoint of the flapping directed link.
    pub to: NodeId,
    /// Window start; the link begins the window up.
    pub start: SimTime,
    /// Window end; the link is restored here if the last draw left it down.
    pub end: SimTime,
    /// Mean up interval (mean time to failure).
    pub mttf: SimDuration,
    /// Mean down interval (mean time to repair).
    pub mttr: SimDuration,
    /// PRNG seed; the stream is also keyed by the endpoints so several
    /// flaps may share a seed without sharing a schedule.
    pub seed: u64,
}

/// One step of the splitmix64 generator — the workspace's standard tiny
/// PRNG for seeded, dependency-free randomness.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An exponential draw with the given mean, never shorter than one
/// nanosecond (a zero-length interval would schedule two transitions at the
/// same instant on the same lane).
fn exp_draw(state: &mut u64, mean: SimDuration) -> SimDuration {
    // 53 uniform bits shifted into (0, 1): adding 0.5 before scaling keeps
    // the draw strictly positive so ln() stays finite.
    let u = ((splitmix64(state) >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
    let ns = -(mean.as_nanos() as f64) * u.ln();
    SimDuration::from_nanos((ns.max(1.0)) as u64)
}

impl LinkFlapSpec {
    /// Expand the renewal process into concrete `Down`/`Restore` events.
    /// The expansion always leaves the link up at `end`.
    pub fn expand(&self) -> Vec<LinkFaultEvent> {
        // Fold the endpoints into the stream so flaps sharing a seed get
        // distinct schedules.
        let mut key = ((self.from.0 as u64) << 32) ^ self.to.0 as u64;
        let mut state = self.seed ^ splitmix64(&mut key);
        let mut events = Vec::new();
        let mut t = self.start;
        loop {
            t += exp_draw(&mut state, self.mttf);
            if t >= self.end {
                break;
            }
            events.push(LinkFaultEvent {
                at: t,
                from: self.from,
                to: self.to,
                kind: LinkFaultKind::Down,
            });
            t += exp_draw(&mut state, self.mttr);
            if t >= self.end {
                events.push(LinkFaultEvent {
                    at: self.end,
                    from: self.from,
                    to: self.to,
                    kind: LinkFaultKind::Restore,
                });
                break;
            }
            events.push(LinkFaultEvent {
                at: t,
                from: self.from,
                to: self.to,
                kind: LinkFaultKind::Restore,
            });
        }
        events
    }
}

/// A structurally invalid fault plan, caught at plan-build time instead of
/// silently last-writer-wins inside the model.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A `Restore` on a directed pair that is already at full service —
    /// usually a typo'd endpoint or a restore scheduled before its down.
    RestoreBeforeFault {
        /// Transmitting endpoint of the directed pair.
        from: NodeId,
        /// Receiving endpoint of the directed pair.
        to: NodeId,
        /// When the dangling restore was scheduled.
        at: SimTime,
    },
    /// Two `Down` windows on the same directed pair overlap (a second down
    /// arrives before the first restore): the single restore would silently
    /// heal both.
    OverlappingDownWindows {
        /// Transmitting endpoint of the directed pair.
        from: NodeId,
        /// Receiving endpoint of the directed pair.
        to: NodeId,
        /// When the overlapping down was scheduled.
        at: SimTime,
    },
    /// A partition whose heal is not strictly after its start.
    ZeroLengthPartition {
        /// Name of the offending partition.
        name: String,
    },
    /// A partition over an empty node (or server) set cuts nothing.
    EmptyPartition {
        /// Name of the offending partition.
        name: String,
    },
    /// Two windows share a partition name and overlap in time; the heal of
    /// one would tear down the other (the model keys live partitions by
    /// name).
    OverlappingPartitionName {
        /// The shared name.
        name: String,
        /// Start of the second (overlapping) window.
        at: SimTime,
    },
    /// A flap spec whose window or means are degenerate (end not after
    /// start, or a zero mean interval).
    BadFlapWindow {
        /// Transmitting endpoint of the flapping pair.
        from: NodeId,
        /// Receiving endpoint of the flapping pair.
        to: NodeId,
    },
    /// A server-group partition names a fleet index past the deployment's
    /// server count. Raised by the runner (which knows the fleet size), not
    /// by [`NetFaultPlan::validate`].
    BadServerIndex {
        /// Name of the offending partition.
        name: String,
        /// The out-of-range fleet index.
        index: usize,
        /// Actual fleet size.
        fleet: usize,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::RestoreBeforeFault { from, to, at } => write!(
                f,
                "restore of link {}->{} at {}s has no preceding fault",
                from.0,
                to.0,
                at.as_secs_f64()
            ),
            FaultPlanError::OverlappingDownWindows { from, to, at } => write!(
                f,
                "down of link {}->{} at {}s overlaps an earlier un-restored down",
                from.0,
                to.0,
                at.as_secs_f64()
            ),
            FaultPlanError::ZeroLengthPartition { name } => {
                write!(f, "partition '{name}' heals at or before its start")
            }
            FaultPlanError::EmptyPartition { name } => {
                write!(f, "partition '{name}' cuts an empty set")
            }
            FaultPlanError::OverlappingPartitionName { name, at } => write!(
                f,
                "partition '{name}' window starting at {}s overlaps another window of the same name",
                at.as_secs_f64()
            ),
            FaultPlanError::BadFlapWindow { from, to } => write!(
                f,
                "flap of link {}->{} has a degenerate window or zero mean interval",
                from.0, to.0
            ),
            FaultPlanError::BadServerIndex { name, index, fleet } => write!(
                f,
                "server partition '{name}' names fleet index {index} but the deployment has {fleet} servers"
            ),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// The full fault schedule attached to a job. The default (empty) plan
/// schedules nothing and leaves every existing code path byte-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetFaultPlan {
    /// Directed link transitions, in schedule order.
    pub link_events: Vec<LinkFaultEvent>,
    /// Seeded flapping processes, expanded to link events at schedule time.
    pub flaps: Vec<LinkFlapSpec>,
    /// Named partition windows.
    pub partitions: Vec<PartitionSpec>,
    /// Checkpoint-server-group partition windows (fleet indices; resolved
    /// to nodes by the runner once placement is known).
    pub server_partitions: Vec<ServerPartitionSpec>,
}

impl NetFaultPlan {
    /// An empty plan: no faults, nothing scheduled.
    pub fn none() -> NetFaultPlan {
        NetFaultPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.link_events.is_empty()
            && self.flaps.is_empty()
            && self.partitions.is_empty()
            && self.server_partitions.is_empty()
    }

    /// Explicit link events plus every flap expansion, in plan order
    /// (explicit events first, then each flap's schedule). This is the
    /// list the runner actually schedules; its order fixes the fault-lane
    /// assignment, so it must stay a pure function of the plan.
    pub fn expanded_link_events(&self) -> Vec<LinkFaultEvent> {
        let mut evs = self.link_events.clone();
        for flap in &self.flaps {
            evs.extend(flap.expand());
        }
        evs
    }

    /// Number of kernel transitions this plan schedules (each partition
    /// costs one for the cut plus one for the heal when it has one; flaps
    /// count their expanded events).
    pub fn transition_count(&self) -> usize {
        self.expanded_link_events().len()
            + self
                .partitions
                .iter()
                .map(|p| 1 + usize::from(p.heal.is_some()))
                .sum::<usize>()
            + self
                .server_partitions
                .iter()
                .map(|p| 1 + usize::from(p.heal.is_some()))
                .sum::<usize>()
    }

    /// Schedule a directed link going down at `at`.
    pub fn with_link_down(mut self, at: SimTime, from: NodeId, to: NodeId) -> NetFaultPlan {
        self.link_events.push(LinkFaultEvent {
            at,
            from,
            to,
            kind: LinkFaultKind::Down,
        });
        self
    }

    /// Schedule a directed link degrading to `1/factor` bandwidth at `at`.
    pub fn with_link_degrade(
        mut self,
        at: SimTime,
        from: NodeId,
        to: NodeId,
        factor: f64,
    ) -> NetFaultPlan {
        self.link_events.push(LinkFaultEvent {
            at,
            from,
            to,
            kind: LinkFaultKind::Degrade(factor),
        });
        self
    }

    /// Schedule a directed link returning to full service at `at`.
    pub fn with_link_restore(mut self, at: SimTime, from: NodeId, to: NodeId) -> NetFaultPlan {
        self.link_events.push(LinkFaultEvent {
            at,
            from,
            to,
            kind: LinkFaultKind::Restore,
        });
        self
    }

    /// Schedule a seeded flapping window on a directed link.
    pub fn with_link_flap(mut self, flap: LinkFlapSpec) -> NetFaultPlan {
        self.flaps.push(flap);
        self
    }

    /// Schedule a named symmetric partition window.
    pub fn with_partition(
        mut self,
        name: impl Into<String>,
        nodes: Vec<NodeId>,
        start: SimTime,
        heal: Option<SimTime>,
    ) -> NetFaultPlan {
        self.partitions.push(PartitionSpec {
            name: name.into(),
            nodes,
            direction: CutDirection::Both,
            start,
            heal,
            tear: false,
        });
        self
    }

    /// Schedule a named partition window cutting only one direction of
    /// boundary traffic.
    pub fn with_partition_directed(
        mut self,
        name: impl Into<String>,
        nodes: Vec<NodeId>,
        direction: CutDirection,
        start: SimTime,
        heal: Option<SimTime>,
    ) -> NetFaultPlan {
        self.partitions.push(PartitionSpec {
            name: name.into(),
            nodes,
            direction,
            start,
            heal,
            tear: false,
        });
        self
    }

    /// Schedule a partition window that additionally *tears* any
    /// checkpoint-image flow it severs mid-stream: the destination server
    /// is left holding a truncated, digest-failing replica (see
    /// [`PartitionSpec::tear`]). Only takes effect when the job enables
    /// torn writes; otherwise behaves exactly like
    /// [`with_partition_directed`](NetFaultPlan::with_partition_directed).
    pub fn with_partition_tearing(
        mut self,
        name: impl Into<String>,
        nodes: Vec<NodeId>,
        direction: CutDirection,
        start: SimTime,
        heal: Option<SimTime>,
    ) -> NetFaultPlan {
        self.partitions.push(PartitionSpec {
            name: name.into(),
            nodes,
            direction,
            start,
            heal,
            tear: true,
        });
        self
    }

    /// Schedule a partition isolating a checkpoint-server group (by fleet
    /// index) from the rest of the platform.
    pub fn with_server_partition(
        mut self,
        name: impl Into<String>,
        servers: Vec<usize>,
        direction: CutDirection,
        start: SimTime,
        heal: Option<SimTime>,
    ) -> NetFaultPlan {
        self.server_partitions.push(ServerPartitionSpec {
            name: name.into(),
            servers,
            direction,
            start,
            heal,
            tear: false,
        });
        self
    }

    /// Schedule a server-group partition that tears severed image flows
    /// (see [`PartitionSpec::tear`]).
    pub fn with_server_partition_tearing(
        mut self,
        name: impl Into<String>,
        servers: Vec<usize>,
        direction: CutDirection,
        start: SimTime,
        heal: Option<SimTime>,
    ) -> NetFaultPlan {
        self.server_partitions.push(ServerPartitionSpec {
            name: name.into(),
            servers,
            direction,
            start,
            heal,
            tear: true,
        });
        self
    }

    /// Reject structurally broken plans before anything is scheduled:
    /// overlapping down windows on the same directed pair, restores with no
    /// preceding fault, zero-length or empty partitions, same-name
    /// partition windows that overlap, and degenerate flap specs. Flaps are
    /// validated both as specs and through their expansion, so a flap that
    /// collides with an explicit down on the same pair is caught too.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        use std::collections::BTreeMap;

        for flap in &self.flaps {
            if flap.end <= flap.start || flap.mttf.is_zero() || flap.mttr.is_zero() {
                return Err(FaultPlanError::BadFlapWindow {
                    from: flap.from,
                    to: flap.to,
                });
            }
        }

        // Walk the per-pair link-state machine over the expanded schedule.
        let mut per_pair: BTreeMap<(usize, usize), Vec<&LinkFaultEvent>> = BTreeMap::new();
        let expanded = self.expanded_link_events();
        for ev in &expanded {
            per_pair.entry((ev.from.0, ev.to.0)).or_default().push(ev);
        }
        for evs in per_pair.values_mut() {
            // Stable by time: same-instant events keep plan order, which is
            // also the order the kernel fires them in (fault lanes are
            // assigned by plan index).
            evs.sort_by_key(|e| e.at);
            let (mut down, mut degraded) = (false, false);
            for ev in evs.iter() {
                match ev.kind {
                    LinkFaultKind::Down => {
                        if down {
                            return Err(FaultPlanError::OverlappingDownWindows {
                                from: ev.from,
                                to: ev.to,
                                at: ev.at,
                            });
                        }
                        down = true;
                    }
                    LinkFaultKind::Degrade(_) => degraded = true,
                    LinkFaultKind::Restore => {
                        if !down && !degraded {
                            return Err(FaultPlanError::RestoreBeforeFault {
                                from: ev.from,
                                to: ev.to,
                                at: ev.at,
                            });
                        }
                        down = false;
                        degraded = false;
                    }
                }
            }
        }

        // Partition windows: regular and server-group specs share the
        // model's by-name namespace, so overlap checks run on the union.
        let mut windows: BTreeMap<&str, Vec<(SimTime, Option<SimTime>)>> = BTreeMap::new();
        for p in &self.partitions {
            if p.nodes.is_empty() {
                return Err(FaultPlanError::EmptyPartition {
                    name: p.name.clone(),
                });
            }
            if p.heal.is_some_and(|h| h <= p.start) {
                return Err(FaultPlanError::ZeroLengthPartition {
                    name: p.name.clone(),
                });
            }
            windows.entry(&p.name).or_default().push((p.start, p.heal));
        }
        for p in &self.server_partitions {
            if p.servers.is_empty() {
                return Err(FaultPlanError::EmptyPartition {
                    name: p.name.clone(),
                });
            }
            if p.heal.is_some_and(|h| h <= p.start) {
                return Err(FaultPlanError::ZeroLengthPartition {
                    name: p.name.clone(),
                });
            }
            windows.entry(&p.name).or_default().push((p.start, p.heal));
        }
        for (name, wins) in windows.iter_mut() {
            wins.sort();
            for pair in wins.windows(2) {
                let (start_a, heal_a) = pair[0];
                let (start_b, _) = pair[1];
                let overlaps = match heal_a {
                    None => true,
                    Some(h) => start_b < h,
                };
                // Same-instant duplicate windows collide even when the
                // earlier one heals: sort puts equal starts together.
                if overlaps || start_a == start_b {
                    return Err(FaultPlanError::OverlappingPartitionName {
                        name: (*name).to_string(),
                        at: start_b,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn empty_plan_is_empty() {
        let p = NetFaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.transition_count(), 0);
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn builders_accumulate_and_count_transitions() {
        let p = NetFaultPlan::none()
            .with_link_down(t(1), NodeId(0), NodeId(1))
            .with_link_degrade(t(2), NodeId(1), NodeId(2), 4.0)
            .with_link_restore(t(3), NodeId(0), NodeId(1))
            .with_partition("switch-a", vec![NodeId(0), NodeId(1)], t(4), Some(t(6)))
            .with_partition("forever", vec![NodeId(2)], t(5), None);
        assert!(!p.is_empty());
        assert_eq!(p.link_events.len(), 3);
        assert_eq!(p.partitions.len(), 2);
        // 3 link events + (cut + heal) + (cut only).
        assert_eq!(p.transition_count(), 6);
        assert_eq!(p.partitions[0].name, "switch-a");
        assert_eq!(p.partitions[0].direction, CutDirection::Both);
        assert_eq!(
            p.link_events[1].kind,
            LinkFaultKind::Degrade(4.0),
            "degrade factor carried through"
        );
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn fault_lanes_stay_in_their_namespace() {
        assert_ne!(FAULT_LANE_BASE, 1 << 63, "disjoint from flow lanes");
        assert_eq!(fault_lane(5), FAULT_LANE_BASE | 5);
    }

    #[test]
    fn flap_expansion_is_deterministic_and_self_contained() {
        let flap = LinkFlapSpec {
            from: NodeId(0),
            to: NodeId(3),
            start: t(1),
            end: t(60),
            mttf: SimDuration::from_secs(5),
            mttr: SimDuration::from_millis(500),
            seed: 42,
        };
        let a = flap.expand();
        let b = flap.expand();
        assert_eq!(a, b, "expansion must be a pure function of the spec");
        assert!(!a.is_empty(), "a 60s window at 5s MTTF should flap");
        // Alternating Down/Restore, monotone non-decreasing times, and the
        // window always closes with the link up.
        for (i, ev) in a.iter().enumerate() {
            let want = if i % 2 == 0 {
                LinkFaultKind::Down
            } else {
                LinkFaultKind::Restore
            };
            assert_eq!(ev.kind, want, "event {i} alternates");
            assert!(ev.at > flap.start && ev.at <= flap.end);
            if i > 0 {
                assert!(a[i - 1].at <= ev.at, "times monotone");
            }
        }
        assert_eq!(a.len() % 2, 0, "every down has a matching restore");
        assert_eq!(a.last().unwrap().kind, LinkFaultKind::Restore);
    }

    #[test]
    fn flap_streams_differ_by_seed_and_endpoint() {
        let base = LinkFlapSpec {
            from: NodeId(0),
            to: NodeId(3),
            start: t(0),
            end: t(120),
            mttf: SimDuration::from_secs(4),
            mttr: SimDuration::from_secs(1),
            seed: 7,
        };
        let reseeded = LinkFlapSpec {
            seed: 8,
            ..base.clone()
        };
        let moved = LinkFlapSpec {
            to: NodeId(4),
            ..base.clone()
        };
        let times = |evs: Vec<LinkFaultEvent>| evs.iter().map(|e| e.at).collect::<Vec<_>>();
        assert_ne!(times(base.expand()), times(reseeded.expand()));
        let base_times = times(base.expand());
        let moved_times = times(moved.expand());
        assert_ne!(base_times, moved_times, "endpoints key the stream");
    }

    #[test]
    fn validate_rejects_restore_before_fault() {
        let p = NetFaultPlan::none().with_link_restore(t(3), NodeId(0), NodeId(1));
        assert_eq!(
            p.validate(),
            Err(FaultPlanError::RestoreBeforeFault {
                from: NodeId(0),
                to: NodeId(1),
                at: t(3),
            })
        );
        // Degrade-then-restore is a legal fault window.
        let ok = NetFaultPlan::none()
            .with_link_degrade(t(1), NodeId(0), NodeId(1), 2.0)
            .with_link_restore(t(3), NodeId(0), NodeId(1));
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_overlapping_down_windows() {
        let p = NetFaultPlan::none()
            .with_link_down(t(1), NodeId(0), NodeId(1))
            .with_link_down(t(2), NodeId(0), NodeId(1))
            .with_link_restore(t(3), NodeId(0), NodeId(1));
        assert_eq!(
            p.validate(),
            Err(FaultPlanError::OverlappingDownWindows {
                from: NodeId(0),
                to: NodeId(1),
                at: t(2),
            })
        );
        // The same two windows on *different* directions are independent.
        let ok = NetFaultPlan::none()
            .with_link_down(t(1), NodeId(0), NodeId(1))
            .with_link_down(t(2), NodeId(1), NodeId(0))
            .with_link_restore(t(3), NodeId(0), NodeId(1))
            .with_link_restore(t(3), NodeId(1), NodeId(0));
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_degenerate_partitions() {
        let zero = NetFaultPlan::none().with_partition("z", vec![NodeId(0)], t(4), Some(t(4)));
        assert_eq!(
            zero.validate(),
            Err(FaultPlanError::ZeroLengthPartition { name: "z".into() })
        );
        let empty = NetFaultPlan::none().with_partition("e", vec![], t(4), None);
        assert_eq!(
            empty.validate(),
            Err(FaultPlanError::EmptyPartition { name: "e".into() })
        );
        let overlap = NetFaultPlan::none()
            .with_partition("dup", vec![NodeId(0)], t(1), Some(t(5)))
            .with_partition("dup", vec![NodeId(1)], t(3), Some(t(8)));
        assert_eq!(
            overlap.validate(),
            Err(FaultPlanError::OverlappingPartitionName {
                name: "dup".into(),
                at: t(3),
            })
        );
        // Disjoint windows may reuse a name.
        let ok = NetFaultPlan::none()
            .with_partition("dup", vec![NodeId(0)], t(1), Some(t(2)))
            .with_partition("dup", vec![NodeId(1)], t(3), Some(t(4)));
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_flap_windows() {
        let bad = |flap: LinkFlapSpec| {
            let got = NetFaultPlan::none().with_link_flap(flap).validate();
            assert_eq!(
                got,
                Err(FaultPlanError::BadFlapWindow {
                    from: NodeId(0),
                    to: NodeId(1),
                })
            );
        };
        let ok_spec = LinkFlapSpec {
            from: NodeId(0),
            to: NodeId(1),
            start: t(1),
            end: t(10),
            mttf: SimDuration::from_secs(1),
            mttr: SimDuration::from_millis(100),
            seed: 1,
        };
        bad(LinkFlapSpec {
            end: t(1),
            ..ok_spec.clone()
        });
        bad(LinkFlapSpec {
            mttf: SimDuration::ZERO,
            ..ok_spec.clone()
        });
        bad(LinkFlapSpec {
            mttr: SimDuration::ZERO,
            ..ok_spec.clone()
        });
        assert_eq!(
            NetFaultPlan::none().with_link_flap(ok_spec).validate(),
            Ok(())
        );
    }

    #[test]
    fn tearing_builders_set_the_flag_and_validate_like_plain_cuts() {
        let p = NetFaultPlan::none()
            .with_partition("plain", vec![NodeId(0)], t(1), Some(t(2)))
            .with_partition_tearing(
                "torn",
                vec![NodeId(1)],
                CutDirection::Both,
                t(3),
                Some(t(4)),
            )
            .with_server_partition_tearing("torn-srv", vec![0], CutDirection::Inbound, t(5), None);
        assert!(!p.partitions[0].tear);
        assert!(p.partitions[1].tear);
        assert!(p.server_partitions[0].tear);
        assert_eq!(p.validate(), Ok(()));
        // Same structural checks apply to tearing windows.
        let bad = NetFaultPlan::none().with_partition_tearing(
            "z",
            vec![NodeId(0)],
            CutDirection::Both,
            t(4),
            Some(t(4)),
        );
        assert_eq!(
            bad.validate(),
            Err(FaultPlanError::ZeroLengthPartition { name: "z".into() })
        );
    }

    #[test]
    fn server_partitions_validate_and_count() {
        let p = NetFaultPlan::none().with_server_partition(
            "store-dark",
            vec![0, 1],
            CutDirection::Both,
            t(2),
            Some(t(6)),
        );
        assert!(!p.is_empty());
        assert_eq!(p.transition_count(), 2);
        assert_eq!(p.validate(), Ok(()));
        let empty = NetFaultPlan::none().with_server_partition(
            "none",
            vec![],
            CutDirection::Both,
            t(2),
            None,
        );
        assert_eq!(
            empty.validate(),
            Err(FaultPlanError::EmptyPartition {
                name: "none".into()
            })
        );
    }
}
