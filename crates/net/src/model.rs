//! The platform model: resources instantiated from a [`Topology`] plus the
//! path logic that computes message delivery times.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use ftmpi_sim::{SimDuration, SimTime};

use crate::fault::CutDirection;
use crate::resource::Resource;
use crate::topology::{NodeId, Topology};

/// Messages at or below this size interleave with bulk traffic at packet
/// granularity instead of queueing behind whole messages (one-MTU packets
/// slip through a busy NIC in microseconds). Per-channel FIFO order is
/// still enforced through the pair-delivery floor.
pub const SMALL_BYPASS_BYTES: u64 = 2048;

/// Which kind of path a transfer took (reported for tests / tracing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// Same node: shared-memory loopback.
    Loopback,
    /// Same cluster: NIC → switch → NIC.
    IntraCluster,
    /// Different clusters: NIC → WAN uplink → WAN downlink → NIC.
    InterCluster,
}

/// Result of a transfer reservation.
#[derive(Debug, Clone, Copy)]
pub struct Delivery {
    /// When the first byte left the sender (after queueing).
    pub start: SimTime,
    /// When the last byte arrived at the receiver.
    pub delivered: SimTime,
    /// Path classification.
    pub path: PathKind,
}

struct NodeRes {
    nic_tx: Resource,
    nic_rx: Resource,
    disk: Resource,
}

struct ClusterRes {
    wan_up: Resource,
    wan_down: Resource,
}

/// Mutable platform state: one resource set per node and per cluster.
///
/// All methods take `&mut self`; the owning layer guards the model with its
/// single state lock (the simulation is logically single-threaded).
pub struct NetModel {
    topo: Topology,
    nodes: Vec<NodeRes>,
    clusters: Vec<ClusterRes>,
    /// Last delivery time per directed node pair: the FIFO floor that keeps
    /// bypassed small messages from overtaking earlier traffic on the same
    /// channel (TCP connections are FIFO; Chandy–Lamport markers rely on
    /// this).
    pair_last: HashMap<(NodeId, NodeId), SimTime>,
    /// Directed links currently down (see [`crate::fault`]). BTree
    /// containers so any iteration a future diagnostic adds is
    /// deterministic.
    link_down: BTreeSet<(NodeId, NodeId)>,
    /// Directed links currently degraded to `1/factor` bandwidth.
    degraded: BTreeMap<(NodeId, NodeId), f64>,
    /// Active partitions by name: each set is cut off from its complement
    /// in the recorded direction(s). The `bool` is the *tearing* flag: a
    /// tearing cut severs in-flight streams mid-transfer (a switch losing
    /// its forwarding table) instead of merely stalling new reservations,
    /// so a bulk write it interrupts leaves a truncated prefix behind.
    partitions: BTreeMap<String, (CutDirection, bool, BTreeSet<NodeId>)>,
}

impl NetModel {
    /// Instantiate resources for a topology.
    pub fn new(topo: Topology) -> NetModel {
        let nodes = (0..topo.node_count())
            .map(|n| {
                let link = topo.link_of(NodeId(n));
                NodeRes {
                    nic_tx: Resource::new(link.nic_bw),
                    nic_rx: Resource::new(link.nic_bw),
                    disk: Resource::new(link.disk_bw),
                }
            })
            .collect();
        let clusters = (0..topo.cluster_count())
            .map(|_| ClusterRes {
                wan_up: Resource::new(topo.spec().wan.access_bw),
                wan_down: Resource::new(topo.spec().wan.access_bw),
            })
            .collect();
        NetModel {
            topo,
            nodes,
            clusters,
            pair_last: HashMap::new(),
            link_down: BTreeSet::new(),
            degraded: BTreeMap::new(),
            partitions: BTreeMap::new(),
        }
    }

    /// The platform topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Take the directed link `from → to` out of service. Idempotent.
    pub fn set_link_down(&mut self, from: NodeId, to: NodeId) {
        self.link_down.insert((from, to));
    }

    /// Degrade the directed link `from → to` to `1/factor` of its rated
    /// bandwidth (factors below `1.0` are clamped to `1.0`). Only bulk
    /// traffic pays the factor — small messages still bypass at packet
    /// granularity, modelling control packets slipping through a congested
    /// port. If the link is also down it stays unreachable; the factor
    /// applies once restored and degraded again.
    pub fn degrade_link(&mut self, from: NodeId, to: NodeId, factor: f64) {
        self.degraded.insert((from, to), factor.max(1.0));
    }

    /// Return the directed link `from → to` to full-rate service, clearing
    /// both down and degraded state. Idempotent.
    pub fn restore_link(&mut self, from: NodeId, to: NodeId) {
        self.link_down.remove(&(from, to));
        self.degraded.remove(&(from, to));
    }

    /// Activate the named partition: every node in `nodes` is cut off from
    /// every node outside the set (both directions). Re-activating an
    /// active name replaces its node set.
    pub fn start_partition(
        &mut self,
        name: impl Into<String>,
        nodes: impl IntoIterator<Item = NodeId>,
    ) {
        self.start_partition_directed(name, nodes, CutDirection::Both);
    }

    /// Activate the named partition cutting only the given direction of
    /// boundary-crossing traffic (relative to `nodes`). Re-activating an
    /// active name replaces its node set and direction.
    pub fn start_partition_directed(
        &mut self,
        name: impl Into<String>,
        nodes: impl IntoIterator<Item = NodeId>,
        direction: CutDirection,
    ) {
        self.start_partition_with(name, nodes, direction, false);
    }

    /// Activate a named partition with an explicit tearing flag: a tearing
    /// cut severs streams mid-transfer, so a bulk write it interrupts can
    /// leave a truncated (torn) prefix on the receiver — see
    /// [`cut_tears`](NetModel::cut_tears). Re-activating an active name
    /// replaces its node set, direction, and flag.
    pub fn start_partition_with(
        &mut self,
        name: impl Into<String>,
        nodes: impl IntoIterator<Item = NodeId>,
        direction: CutDirection,
        tear: bool,
    ) {
        self.partitions
            .insert(name.into(), (direction, tear, nodes.into_iter().collect()));
    }

    /// Heal the named partition. Healing an unknown name is a no-op (the
    /// cut may have been replaced or never activated).
    pub fn heal_partition(&mut self, name: &str) {
        self.partitions.remove(name);
    }

    /// Whether the named partition is currently active.
    pub fn partition_active(&self, name: &str) -> bool {
        self.partitions.contains_key(name)
    }

    /// Whether any fault state (down links or partitions) currently cuts
    /// traffic. Degraded links still deliver, so they don't count.
    pub fn faults_cutting(&self) -> bool {
        !self.link_down.is_empty() || !self.partitions.is_empty()
    }

    /// Whether a message from `src` can currently reach `dst`: true unless
    /// the directed link is down or an active partition cuts `src → dst`.
    /// A `Both` partition separates the set from its complement entirely;
    /// `Outbound` kills only messages leaving the set, `Inbound` only
    /// messages entering it — the query is directional, so a half-open cut
    /// can pass data one way while the acknowledgement path answers false.
    /// Loopback (`src == dst`) is always reachable — a node can always
    /// talk to itself.
    pub fn reachable(&self, src: NodeId, dst: NodeId) -> bool {
        if src == dst {
            return true;
        }
        if self.link_down.contains(&(src, dst)) {
            return false;
        }
        self.partitions.values().all(|(direction, _, set)| {
            let (src_in, dst_in) = (set.contains(&src), set.contains(&dst));
            match direction {
                CutDirection::Both => src_in == dst_in,
                // Blocked iff the message crosses the cut in the named
                // direction (leaves the set for Outbound, enters for Inbound).
                CutDirection::Outbound => !src_in || dst_in,
                CutDirection::Inbound => src_in || !dst_in,
            }
        })
    }

    /// Whether an active *tearing* partition currently cuts `src → dst`:
    /// a stream between the pair was not merely stalled but severed
    /// mid-transfer, so whatever prefix already landed at `dst` sits there
    /// truncated. False for ordinary (stall-semantics) partitions and for
    /// down links — those pause reliable streams without data loss.
    pub fn cut_tears(&self, src: NodeId, dst: NodeId) -> bool {
        if src == dst {
            return false;
        }
        self.partitions.values().any(|(direction, tear, set)| {
            if !tear {
                return false;
            }
            let (src_in, dst_in) = (set.contains(&src), set.contains(&dst));
            match direction {
                CutDirection::Both => src_in != dst_in,
                CutDirection::Outbound => src_in && !dst_in,
                CutDirection::Inbound => !src_in && dst_in,
            }
        })
    }

    /// The degrade factor currently applied to `src → dst` (`1.0` = full
    /// rate).
    fn degrade_factor(&self, src: NodeId, dst: NodeId) -> f64 {
        self.degraded.get(&(src, dst)).copied().unwrap_or(1.0)
    }

    /// Reserve the physical path for one message of `bytes` from `src` to
    /// `dst`, no earlier than `earliest`. Software-stack costs (overheads,
    /// daemon copies) are *not* included — the runtime layers add those.
    ///
    /// Messages of at most [`SMALL_BYPASS_BYTES`] interleave through busy
    /// resources at packet granularity, but never overtake earlier traffic
    /// on the same `(src, dst)` channel.
    pub fn transfer(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        earliest: SimTime,
    ) -> Delivery {
        self.transfer_with_overhead(src, dst, bytes, earliest, SimDuration::ZERO)
    }

    /// Like [`transfer`](NetModel::transfer), with a per-message software
    /// overhead (stack latency, daemon copies) added *before* the FIFO
    /// floor: on a real TCP channel the receiver-side copies happen in
    /// stream order, so a cheap-to-copy small message still cannot overtake
    /// an expensive large one sent earlier on the same channel.
    pub fn transfer_with_overhead(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        earliest: SimTime,
        overhead: SimDuration,
    ) -> Delivery {
        let small = bytes <= SMALL_BYPASS_BYTES;
        let (start, delivered, path) = if src == dst {
            let link = self.topo.link_of(src);
            let dur = SimDuration::for_transfer(bytes, link.loopback_bw);
            (
                earliest,
                earliest + link.loopback_latency + dur,
                PathKind::Loopback,
            )
        } else {
            let src_link = self.topo.link_of(src).clone();
            let degrade = self.degrade_factor(src, dst);
            let (tx_start, tx_end) = if small {
                self.nodes[src.0].nic_tx.bypass(earliest, bytes)
            } else if degrade > 1.0 {
                // Degraded link: the flow drains at 1/factor of the NIC
                // rate, but occupies the NIC only for its normal share
                // (other flows through the same NIC to healthy peers are
                // not slowed).
                self.nodes[src.0].nic_tx.reserve_with_rate(
                    earliest,
                    bytes,
                    src_link.nic_bw / degrade,
                )
            } else {
                self.nodes[src.0].nic_tx.reserve(earliest, bytes)
            };
            if self.topo.same_cluster(src, dst) {
                let arrival = tx_end + src_link.latency;
                let (_, rx_end) = if small {
                    self.nodes[dst.0].nic_rx.bypass(arrival, bytes)
                } else {
                    self.nodes[dst.0].nic_rx.reserve(arrival, bytes)
                };
                (tx_start, rx_end, PathKind::IntraCluster)
            } else {
                let wan = self.topo.spec().wan.clone();
                let cs = self.topo.cluster_of(src);
                let cd = self.topo.cluster_of(dst);
                // Uplink: shared access pipe, per-flow WAN throughput.
                let up_arrival = tx_end + src_link.latency;
                let (_, up_end) = if small {
                    self.clusters[cs.0].wan_up.bypass(up_arrival, bytes)
                } else {
                    self.clusters[cs.0]
                        .wan_up
                        .reserve_with_rate(up_arrival, bytes, wan.per_flow_bw)
                };
                // WAN propagation, then the destination cluster's pipe.
                let down_arrival = up_end + wan.latency;
                let (_, down_end) = if small {
                    self.clusters[cd.0].wan_down.bypass(down_arrival, bytes)
                } else {
                    self.clusters[cd.0].wan_down.reserve_with_rate(
                        down_arrival,
                        bytes,
                        wan.per_flow_bw,
                    )
                };
                let dst_link = self.topo.link_of(dst);
                let rx_arrival = down_end + dst_link.latency;
                let (_, rx_end) = if small {
                    self.nodes[dst.0].nic_rx.bypass(rx_arrival, bytes)
                } else {
                    self.nodes[dst.0].nic_rx.reserve(rx_arrival, bytes)
                };
                (tx_start, rx_end, PathKind::InterCluster)
            }
        };
        // Per-channel FIFO floor (applied after software overheads).
        let delivered = delivered + overhead;
        let floor = self.pair_last.entry((src, dst)).or_insert(SimTime::ZERO);
        let delivered = delivered.max(*floor);
        *floor = delivered;
        Delivery {
            start,
            delivered,
            path,
        }
    }

    /// Sum of the [`touches`](Resource::touches) counters of every resource
    /// a `src → dst` transfer reserves (0 for loopback, which touches
    /// none). Two snapshots around a transfer differ by the path length;
    /// any *extra* difference is competing traffic that reserved part of
    /// the same path in between. The flow layer uses this to audit its
    /// chunk batching: inside a batched window the delta per chunk must be
    /// exactly constant, because the batching argument is precisely that no
    /// other event — and therefore no other reservation — can interleave.
    pub fn path_touches(&self, src: NodeId, dst: NodeId) -> u64 {
        if src == dst {
            return 0;
        }
        let ends = self.nodes[src.0].nic_tx.touches() + self.nodes[dst.0].nic_rx.touches();
        if self.topo.same_cluster(src, dst) {
            ends
        } else {
            let cs = self.topo.cluster_of(src);
            let cd = self.topo.cluster_of(dst);
            ends + self.clusters[cs.0].wan_up.touches() + self.clusters[cd.0].wan_down.touches()
        }
    }

    /// Reserve a local-disk write of `bytes` on `node` (checkpoint files).
    /// Returns the completion time.
    pub fn disk_write(&mut self, node: NodeId, bytes: u64, earliest: SimTime) -> SimTime {
        let (_, end) = self.nodes[node.0].disk.reserve(earliest, bytes);
        end
    }

    /// Reserve a local-disk read of `bytes` on `node` (restart image load).
    pub fn disk_read(&mut self, node: NodeId, bytes: u64, earliest: SimTime) -> SimTime {
        // Same spindle as writes at this granularity.
        self.disk_write(node, bytes, earliest)
    }

    /// NIC transmit utilisation counters of a node (bytes, busy time).
    pub fn nic_tx_stats(&self, node: NodeId) -> (u64, SimDuration) {
        let r = &self.nodes[node.0].nic_tx;
        (r.bytes_total(), r.busy_time())
    }

    /// NIC receive utilisation counters of a node.
    pub fn nic_rx_stats(&self, node: NodeId) -> (u64, SimDuration) {
        let r = &self.nodes[node.0].nic_rx;
        (r.bytes_total(), r.busy_time())
    }

    /// Drop all queued backlog (platform reboot after a failure-restart).
    pub fn reset_queues(&mut self, now: SimTime) {
        for n in &mut self.nodes {
            n.nic_tx.reset_queue(now);
            n.nic_rx.reset_queue(now);
            n.disk.reset_queue(now);
        }
        for c in &mut self.clusters {
            c.wan_up.reset_queue(now);
            c.wan_down.reset_queue(now);
        }
        // TCP connections died with the job: no FIFO carry-over. Fault
        // state (down links, degradations, partitions) intentionally
        // survives — restarting the job does not fix the network.
        self.pair_last.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LinkConfig;
    use crate::topology::Topology;

    fn gige4() -> NetModel {
        NetModel::new(Topology::single_cluster(4, LinkConfig::gige()))
    }

    #[test]
    fn path_touches_tracks_exactly_the_reserved_path() {
        let mut net = gige4();
        assert_eq!(net.path_touches(NodeId(0), NodeId(1)), 0);
        // Each intra-cluster transfer touches nic_tx + nic_rx once, large
        // or small (the bypass path still counts).
        net.transfer(NodeId(0), NodeId(1), 1 << 20, SimTime::ZERO);
        assert_eq!(net.path_touches(NodeId(0), NodeId(1)), 2);
        net.transfer(NodeId(0), NodeId(1), 64, SimTime::ZERO);
        assert_eq!(net.path_touches(NodeId(0), NodeId(1)), 4);
        // Loopback touches no shared resource.
        net.transfer(NodeId(2), NodeId(2), 1 << 20, SimTime::ZERO);
        assert_eq!(net.path_touches(NodeId(2), NodeId(2)), 0);
        // Competing traffic through a shared endpoint shows up in the delta.
        net.transfer(NodeId(2), NodeId(1), 64, SimTime::ZERO);
        assert_eq!(net.path_touches(NodeId(0), NodeId(1)), 5);
    }

    #[test]
    fn loopback_beats_network() {
        let mut net = gige4();
        let same = net.transfer(NodeId(0), NodeId(0), 1024, SimTime::ZERO);
        let cross = net.transfer(NodeId(1), NodeId(2), 1024, SimTime::ZERO);
        assert_eq!(same.path, PathKind::Loopback);
        assert_eq!(cross.path, PathKind::IntraCluster);
        assert!(same.delivered < cross.delivered);
    }

    #[test]
    fn intra_cluster_delivery_time_formula() {
        let mut net = gige4();
        let d = net.transfer(NodeId(0), NodeId(1), 125_000, SimTime::ZERO);
        // 125 kB at 125 MB/s = 1 ms per NIC stage, + 45 µs switch latency.
        let expect = 0.001 + 45e-6 + 0.001;
        assert!(
            (d.delivered.as_secs_f64() - expect).abs() < 1e-9,
            "got {} want {expect}",
            d.delivered.as_secs_f64()
        );
    }

    #[test]
    fn per_channel_fifo_delivery() {
        // Messages sent in order on the same src→dst pair must deliver in order.
        let mut net = gige4();
        let mut last = SimTime::ZERO;
        let mut earliest = SimTime::ZERO;
        for i in 0..50 {
            let bytes = if i % 3 == 0 { 1 << 20 } else { 64 };
            let d = net.transfer(NodeId(0), NodeId(1), bytes, earliest);
            assert!(d.delivered >= last, "delivery order violated at msg {i}");
            last = d.delivered;
            earliest += SimDuration::from_micros(10);
        }
    }

    #[test]
    fn sender_nic_contention_serializes() {
        let mut net = gige4();
        // Two megabyte messages from the same node to different peers
        // serialize on the sender's NIC.
        let d1 = net.transfer(NodeId(0), NodeId(1), 1 << 20, SimTime::ZERO);
        let d2 = net.transfer(NodeId(0), NodeId(2), 1 << 20, SimTime::ZERO);
        assert!(d2.start >= d1.start + SimDuration::for_transfer(1 << 20, 125e6));
    }

    #[test]
    fn receiver_nic_is_the_fanin_bottleneck() {
        // Many nodes streaming to one "checkpoint server" node: completion
        // scales with the number of senders (server NIC serialization).
        let mut net = NetModel::new(Topology::single_cluster(9, LinkConfig::gige()));
        let bytes = 10 << 20;
        let mut completions = Vec::new();
        for src in 1..9 {
            let d = net.transfer(NodeId(src), NodeId(0), bytes, SimTime::ZERO);
            completions.push(d.delivered.as_secs_f64());
        }
        let per_image = bytes as f64 / 125e6;
        let last = completions.last().unwrap();
        assert!(
            *last >= 8.0 * per_image,
            "8 images should serialize on the server rx NIC: {last} vs {}",
            8.0 * per_image
        );
    }

    #[test]
    fn grid_wan_path_is_much_slower() {
        let mut net = NetModel::new(Topology::grid5000());
        // bordeaux node 0 → lille node 48.
        let inter = net.transfer(NodeId(0), NodeId(48), 1 << 20, SimTime::ZERO);
        assert_eq!(inter.path, PathKind::InterCluster);
        let mut net2 = NetModel::new(Topology::grid5000());
        let intra = net2.transfer(NodeId(0), NodeId(1), 1 << 20, SimTime::ZERO);
        let ratio = inter.delivered.as_secs_f64() / intra.delivered.as_secs_f64();
        assert!(ratio > 10.0, "WAN should dominate: ratio {ratio}");
    }

    #[test]
    fn wan_latency_dominates_small_messages() {
        let mut net = NetModel::new(Topology::grid5000());
        let inter = net.transfer(NodeId(0), NodeId(48), 8, SimTime::ZERO);
        let lat = inter.delivered.as_secs_f64();
        assert!(lat >= 5e-3, "one-way WAN latency missing: {lat}");
    }

    #[test]
    fn small_messages_bypass_bulk_queues_from_other_channels() {
        let mut net = gige4();
        // Saturate node 2's rx with bulk from node 1.
        for _ in 0..20 {
            net.transfer(NodeId(1), NodeId(2), 10 << 20, SimTime::ZERO);
        }
        // A 64-byte control message from node 3 slips through.
        let d = net.transfer(NodeId(3), NodeId(2), 64, SimTime::ZERO);
        assert!(
            d.delivered.as_secs_f64() < 0.001,
            "small message stuck behind bulk: {}",
            d.delivered.as_secs_f64()
        );
    }

    #[test]
    fn small_messages_never_overtake_their_own_channel() {
        let mut net = gige4();
        let bulk = net.transfer(NodeId(1), NodeId(2), 10 << 20, SimTime::ZERO);
        // Same channel: the marker-sized message honours FIFO.
        let marker = net.transfer(NodeId(1), NodeId(2), 64, SimTime::ZERO);
        assert!(
            marker.delivered >= bulk.delivered,
            "FIFO violated: marker {} before bulk {}",
            marker.delivered,
            bulk.delivered
        );
    }

    #[test]
    fn disk_serializes_writes() {
        let mut net = gige4();
        let e1 = net.disk_write(NodeId(0), 60_000_000, SimTime::ZERO); // 1 s
        let e2 = net.disk_write(NodeId(0), 60_000_000, SimTime::ZERO);
        assert_eq!(e1.as_secs_f64(), 1.0);
        assert_eq!(e2.as_secs_f64(), 2.0);
    }

    #[test]
    fn link_down_and_restore_flip_reachability() {
        let mut net = gige4();
        assert!(net.reachable(NodeId(0), NodeId(1)));
        net.set_link_down(NodeId(0), NodeId(1));
        assert!(!net.reachable(NodeId(0), NodeId(1)));
        // Directed: the reverse link still works.
        assert!(net.reachable(NodeId(1), NodeId(0)));
        // Loopback always works.
        assert!(net.reachable(NodeId(0), NodeId(0)));
        net.restore_link(NodeId(0), NodeId(1));
        assert!(net.reachable(NodeId(0), NodeId(1)));
        assert!(!net.faults_cutting());
    }

    #[test]
    fn partition_cuts_both_directions_but_not_within_sides() {
        let mut net = gige4();
        net.start_partition("switch-a", [NodeId(0), NodeId(1)]);
        assert!(net.partition_active("switch-a"));
        assert!(net.faults_cutting());
        assert!(!net.reachable(NodeId(0), NodeId(2)));
        assert!(!net.reachable(NodeId(2), NodeId(0)));
        // Within the cut set, and within the complement, traffic flows.
        assert!(net.reachable(NodeId(0), NodeId(1)));
        assert!(net.reachable(NodeId(2), NodeId(3)));
        net.heal_partition("switch-a");
        assert!(!net.partition_active("switch-a"));
        assert!(net.reachable(NodeId(0), NodeId(2)));
        // Healing twice (or an unknown name) is a no-op.
        net.heal_partition("switch-a");
        net.heal_partition("never-existed");
    }

    #[test]
    fn directed_partition_cuts_only_one_way() {
        let mut net = gige4();
        // Outbound: nothing leaves {0,1}, but traffic still flows in.
        net.start_partition_directed("half-open", [NodeId(0), NodeId(1)], CutDirection::Outbound);
        assert!(!net.reachable(NodeId(0), NodeId(2)), "outbound cut");
        assert!(net.reachable(NodeId(2), NodeId(0)), "inbound still flows");
        // Within the set and within the complement, unaffected.
        assert!(net.reachable(NodeId(0), NodeId(1)));
        assert!(net.reachable(NodeId(2), NodeId(3)));
        // Re-activating the name flips the direction in place.
        net.start_partition_directed("half-open", [NodeId(0), NodeId(1)], CutDirection::Inbound);
        assert!(net.reachable(NodeId(0), NodeId(2)), "outbound restored");
        assert!(!net.reachable(NodeId(2), NodeId(0)), "inbound now cut");
        net.heal_partition("half-open");
        assert!(net.reachable(NodeId(2), NodeId(0)));
    }

    #[test]
    fn tearing_partition_reports_cut_tears() {
        let mut net = gige4();
        // A plain partition cuts but does not tear.
        net.start_partition("clean", [NodeId(0)]);
        assert!(!net.reachable(NodeId(0), NodeId(2)));
        assert!(!net.cut_tears(NodeId(0), NodeId(2)));
        net.heal_partition("clean");
        // A tearing partition reports tears across the cut, honouring
        // direction, and never for loopback.
        net.start_partition_with("torn", [NodeId(0)], CutDirection::Outbound, true);
        assert!(
            net.cut_tears(NodeId(0), NodeId(2)),
            "outbound crossing tears"
        );
        assert!(
            !net.cut_tears(NodeId(2), NodeId(0)),
            "inbound side untouched"
        );
        assert!(!net.cut_tears(NodeId(0), NodeId(0)), "loopback never tears");
        net.heal_partition("torn");
        assert!(!net.cut_tears(NodeId(0), NodeId(2)));
    }

    #[test]
    fn directed_partition_survives_reset_queues() {
        let mut net = gige4();
        net.start_partition_directed("asym", [NodeId(3)], CutDirection::Inbound);
        net.reset_queues(SimTime::from_nanos(1));
        assert!(!net.reachable(NodeId(0), NodeId(3)));
        assert!(net.reachable(NodeId(3), NodeId(0)));
    }

    #[test]
    fn overlapping_partitions_all_apply() {
        let mut net = gige4();
        net.start_partition("a", [NodeId(0), NodeId(1)]);
        net.start_partition("b", [NodeId(1), NodeId(2)]);
        // 1↔2 crosses partition "a" even though "b" groups them together.
        assert!(!net.reachable(NodeId(1), NodeId(2)));
        net.heal_partition("a");
        assert!(net.reachable(NodeId(1), NodeId(2)));
        assert!(!net.reachable(NodeId(2), NodeId(3)), "b still cuts");
    }

    #[test]
    fn degraded_link_slows_bulk_by_the_factor() {
        let mut net = gige4();
        let clean = net.transfer(NodeId(0), NodeId(1), 1 << 20, SimTime::ZERO);
        let mut slow = gige4();
        slow.degrade_link(NodeId(0), NodeId(1), 4.0);
        let deg = slow.transfer(NodeId(0), NodeId(1), 1 << 20, SimTime::ZERO);
        assert!(slow.reachable(NodeId(0), NodeId(1)), "degraded still up");
        // The factor applies at the transmit stage: the flow drains the
        // link at 1/4 rate, adding 3 extra transmit times end-to-end.
        let extra = 3.0 * SimDuration::for_transfer(1 << 20, 125e6).as_secs_f64();
        let got = deg.delivered.as_secs_f64() - clean.delivered.as_secs_f64();
        assert!(
            (got - extra).abs() < 1e-9,
            "1 MiB at 1/4 link rate: extra delay {got} want {extra}"
        );
        // Factors below 1.0 clamp: no speedup from a "degrade".
        let mut fast = gige4();
        fast.degrade_link(NodeId(0), NodeId(1), 0.25);
        let f = fast.transfer(NodeId(0), NodeId(1), 1 << 20, SimTime::ZERO);
        assert_eq!(f.delivered, clean.delivered);
    }

    #[test]
    fn degraded_link_does_not_slow_small_bypass_or_other_peers() {
        let mut net = gige4();
        let clean_small = net.transfer(NodeId(0), NodeId(1), 64, SimTime::ZERO);
        let clean_other = net.transfer(NodeId(0), NodeId(2), 1 << 20, SimTime::ZERO);
        let mut deg = gige4();
        deg.degrade_link(NodeId(0), NodeId(1), 8.0);
        let small = deg.transfer(NodeId(0), NodeId(1), 64, SimTime::ZERO);
        let other = deg.transfer(NodeId(0), NodeId(2), 1 << 20, SimTime::ZERO);
        assert_eq!(small.delivered, clean_small.delivered, "bypass unaffected");
        assert_eq!(
            other.delivered, clean_other.delivered,
            "other peer unaffected"
        );
    }

    #[test]
    fn fault_state_survives_reset_queues() {
        let mut net = gige4();
        net.set_link_down(NodeId(0), NodeId(1));
        net.start_partition("wan", [NodeId(3)]);
        net.reset_queues(SimTime::from_nanos(1));
        assert!(
            !net.reachable(NodeId(0), NodeId(1)),
            "restart does not fix cables"
        );
        assert!(net.partition_active("wan"));
    }

    #[test]
    fn reset_queues_drains_backlog() {
        let mut net = gige4();
        net.transfer(NodeId(0), NodeId(1), 1 << 30, SimTime::ZERO); // huge
        net.reset_queues(SimTime::from_nanos(1));
        let d = net.transfer(NodeId(0), NodeId(1), 64, SimTime::from_nanos(1));
        assert!(d.delivered.as_secs_f64() < 0.001);
    }
}
