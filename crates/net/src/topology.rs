//! Platform topologies: clusters of nodes, optionally joined by WAN links.

use crate::config::{LinkConfig, WanConfig};

/// Index of a compute node in the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Index of a cluster in the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub usize);

/// Description of one cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Human-readable name (site name in the grid figures).
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Intra-cluster link parameters.
    pub link: LinkConfig,
}

/// Full platform description consumed by [`crate::NetModel`].
#[derive(Debug, Clone)]
pub struct TopologySpec {
    /// The clusters, in node-numbering order.
    pub clusters: Vec<ClusterSpec>,
    /// Inter-cluster link parameters (ignored for single-cluster platforms).
    pub wan: WanConfig,
}

/// Resolved topology: node→cluster mapping plus the spec.
#[derive(Debug, Clone)]
pub struct Topology {
    spec: TopologySpec,
    /// `node_cluster[n]` = cluster of node `n`.
    node_cluster: Vec<ClusterId>,
    /// First node index of each cluster.
    cluster_base: Vec<usize>,
}

impl Topology {
    /// Resolve a spec into a topology.
    pub fn new(spec: TopologySpec) -> Topology {
        assert!(
            !spec.clusters.is_empty(),
            "topology needs at least one cluster"
        );
        let mut node_cluster = Vec::new();
        let mut cluster_base = Vec::with_capacity(spec.clusters.len());
        for (ci, c) in spec.clusters.iter().enumerate() {
            assert!(c.nodes > 0, "cluster '{}' has no nodes", c.name);
            cluster_base.push(node_cluster.len());
            node_cluster.extend(std::iter::repeat_n(ClusterId(ci), c.nodes));
        }
        Topology {
            spec,
            node_cluster,
            cluster_base,
        }
    }

    /// A single homogeneous cluster of `nodes` nodes.
    pub fn single_cluster(nodes: usize, link: LinkConfig) -> Topology {
        Topology::new(TopologySpec {
            clusters: vec![ClusterSpec {
                name: "cluster".to_string(),
                nodes,
                link,
            }],
            wan: WanConfig::unused(),
        })
    }

    /// The Grid5000 subset used in §5.4: six Opteron clusters.
    ///
    /// Sites and sizes from the paper: Bordeaux 48, Lille 53, Orsay 216,
    /// Rennes 64, Sophia 105, Toulouse 58 (544 nodes total).
    pub fn grid5000() -> Topology {
        let sites: &[(&str, usize)] = &[
            ("bordeaux", 48),
            ("lille", 53),
            ("orsay", 216),
            ("rennes", 64),
            ("sophia", 105),
            ("toulouse", 58),
        ];
        Topology::new(TopologySpec {
            clusters: sites
                .iter()
                .map(|&(name, nodes)| ClusterSpec {
                    name: name.to_string(),
                    nodes,
                    link: LinkConfig::gige(),
                })
                .collect(),
            wan: WanConfig::renater(),
        })
    }

    /// The raw spec.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_cluster.len()
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.spec.clusters.len()
    }

    /// Cluster of a node.
    pub fn cluster_of(&self, node: NodeId) -> ClusterId {
        self.node_cluster[node.0]
    }

    /// Link parameters of a node's cluster.
    pub fn link_of(&self, node: NodeId) -> &LinkConfig {
        &self.spec.clusters[self.cluster_of(node).0].link
    }

    /// Nodes of a cluster as a range of ids.
    pub fn nodes_of(&self, cluster: ClusterId) -> impl Iterator<Item = NodeId> {
        let base = self.cluster_base[cluster.0];
        let n = self.spec.clusters[cluster.0].nodes;
        (base..base + n).map(NodeId)
    }

    /// Are two nodes in the same cluster?
    pub fn same_cluster(&self, a: NodeId, b: NodeId) -> bool {
        self.cluster_of(a) == self.cluster_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cluster_layout() {
        let t = Topology::single_cluster(4, LinkConfig::gige());
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.cluster_count(), 1);
        assert!(t.same_cluster(NodeId(0), NodeId(3)));
    }

    #[test]
    fn grid5000_matches_paper_sites() {
        let t = Topology::grid5000();
        assert_eq!(t.cluster_count(), 6);
        assert_eq!(t.node_count(), 48 + 53 + 216 + 64 + 105 + 58);
        // Orsay is the third cluster and the largest.
        assert_eq!(t.spec().clusters[2].name, "orsay");
        assert_eq!(t.spec().clusters[2].nodes, 216);
    }

    #[test]
    fn cluster_membership_is_contiguous() {
        let t = Topology::grid5000();
        let bordeaux: Vec<NodeId> = t.nodes_of(ClusterId(0)).collect();
        assert_eq!(bordeaux.first(), Some(&NodeId(0)));
        assert_eq!(bordeaux.last(), Some(&NodeId(47)));
        let lille: Vec<NodeId> = t.nodes_of(ClusterId(1)).collect();
        assert_eq!(lille.first(), Some(&NodeId(48)));
        assert!(!t.same_cluster(NodeId(47), NodeId(48)));
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn empty_topology_rejected() {
        Topology::new(TopologySpec {
            clusters: vec![],
            wan: WanConfig::unused(),
        });
    }
}
