//! Integration tests for the simulation kernel: scheduling, lazy clocks,
//! suspension/waking, kill semantics, determinism, deadlock detection, and
//! coroutine/threaded backend equivalence.

use std::sync::Arc;

use parking_lot::Mutex;

use ftmpi_sim::{ProcessExit, Reply, Sim, SimDuration, SimError, SimTime};

#[test]
fn empty_simulation_completes_at_time_zero() {
    let mut sim = Sim::new();
    let report = sim.run().unwrap();
    assert_eq!(report.final_time, SimTime::ZERO);
    assert_eq!(report.events_executed, 0);
}

#[test]
fn scheduled_closures_run_in_time_order() {
    let mut sim = Sim::new();
    let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    for &t in &[30u64, 10, 20] {
        let log = Arc::clone(&log);
        sim.schedule(SimTime::from_nanos(t), move |sc| {
            log.lock().push(sc.now().as_nanos());
        });
    }
    let report = sim.run().unwrap();
    assert_eq!(*log.lock(), vec![10, 20, 30]);
    assert_eq!(report.final_time, SimTime::from_nanos(30));
}

#[test]
fn lazy_compute_advances_virtual_time_without_events() {
    let mut sim = Sim::new();
    sim.spawn("computer", |mut ctx| async move {
        ctx.advance(SimDuration::from_secs(100));
        ctx.sleep_until_local().await;
    });
    let report = sim.run().unwrap();
    assert_eq!(report.final_time, SimTime::from_nanos(100_000_000_000));
    // Spawn resume + one exec round-trip: compute itself cost no events.
    assert!(
        report.events_executed <= 4,
        "got {}",
        report.events_executed
    );
}

#[test]
fn sleep_interleaves_processes_deterministically() {
    let mut sim = Sim::new();
    let log: Arc<Mutex<Vec<(String, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    for (name, step) in [("a", 3u64), ("b", 5u64)] {
        let log = Arc::clone(&log);
        sim.spawn(name, move |mut ctx| async move {
            for _ in 0..3 {
                ctx.sleep(SimDuration::from_secs(step)).await;
                log.lock()
                    .push((ctx.name().to_string(), ctx.now().as_nanos() / 1_000_000_000));
            }
        });
    }
    sim.run().unwrap();
    let got = log.lock().clone();
    let expect = vec![
        ("a".to_string(), 3),
        ("b".to_string(), 5),
        ("a".to_string(), 6),
        ("a".to_string(), 9),
        ("b".to_string(), 10),
        ("b".to_string(), 15),
    ];
    assert_eq!(got, expect);
}

/// A tiny one-slot mailbox model: demonstrates (and tests) the
/// suspend/Reply/complete protocol between processes and model state.
#[derive(Default)]
struct Mailbox {
    value: Option<u64>,
    waiter: Option<Reply<u64>>,
}

#[test]
fn reply_wakes_parked_process_with_value() {
    let mut sim = Sim::new();
    let mbox: Arc<Mutex<Mailbox>> = Arc::new(Mutex::new(Mailbox::default()));

    let mb = Arc::clone(&mbox);
    sim.spawn("receiver", move |mut ctx| async move {
        let got = ctx
            .exec::<u64, _>(move |sc, reply| {
                let mut m = mb.lock();
                if let Some(v) = m.value.take() {
                    reply.complete(sc, v);
                } else {
                    m.waiter = Some(reply);
                }
            })
            .await;
        assert_eq!(got, 42);
        assert_eq!(ctx.now(), SimTime::from_nanos(7));
    });

    let mb = Arc::clone(&mbox);
    sim.schedule(SimTime::from_nanos(7), move |sc| {
        let mut m = mb.lock();
        if let Some(w) = m.waiter.take() {
            w.complete(sc, 42);
        } else {
            m.value = Some(42);
        }
    });

    let report = sim.run().unwrap();
    assert!(report
        .exits
        .iter()
        .all(|(_, _, e)| *e == ProcessExit::Normal));
}

#[test]
fn complete_at_delays_the_wake() {
    let mut sim = Sim::new();
    sim.spawn("sleeper", |mut ctx| async move {
        let v = ctx
            .exec::<u32, _>(|sc, reply| {
                let at = sc.now() + SimDuration::from_secs(9);
                reply.complete_at(sc, at, 5);
            })
            .await;
        assert_eq!(v, 5);
        assert_eq!(ctx.now().as_secs_f64(), 9.0);
    });
    let report = sim.run().unwrap();
    assert_eq!(report.final_time, SimTime::from_nanos(9_000_000_000));
}

#[test]
fn killed_process_unwinds_and_reports_killed_exit() {
    let mut sim = Sim::new();
    let flag = sim.shared_flag();
    let f2 = flag.clone();
    let victim = sim.spawn("victim", move |mut ctx| async move {
        ctx.sleep(SimDuration::from_secs(1_000_000)).await;
        f2.set(); // must never run
    });
    sim.schedule(SimTime::from_nanos(5), move |sc| sc.kill(victim));
    let report = sim.run().unwrap();
    assert!(!flag.get());
    let exit = report
        .exits
        .iter()
        .find(|(pid, _, _)| *pid == victim)
        .map(|(_, _, e)| e.clone())
        .unwrap();
    assert_eq!(exit, ProcessExit::Killed);
    // The pending sleep-wake must not resurrect the process.
    assert_eq!(report.final_time, SimTime::from_nanos(5));
}

#[test]
fn kill_is_noop_for_finished_process() {
    let mut sim = Sim::new();
    let p = sim.spawn("quick", |_ctx| async {});
    sim.schedule(SimTime::from_nanos(100), move |sc| {
        assert!(!sc.is_alive(p));
        sc.kill(p); // must not panic or hang
    });
    sim.run().unwrap();
}

#[test]
fn process_panic_surfaces_as_error() {
    let mut sim = Sim::new();
    sim.spawn("buggy", |_ctx| async { panic!("boom") });
    match sim.run() {
        Err(SimError::ProcessPanicked { name, message }) => {
            assert_eq!(name, "buggy");
            assert!(message.contains("boom"));
        }
        other => panic!("expected panic error, got {other:?}"),
    }
}

#[test]
fn unwakeable_process_is_reported_as_deadlock() {
    let mut sim = Sim::new();
    sim.spawn("stuck", |mut ctx| async move {
        // Suspend with a reply nobody will ever complete.
        ctx.exec::<(), _>(|_sc, _reply| {
            // drop the reply
        })
        .await;
    });
    match sim.run() {
        Err(SimError::Deadlock(info)) => {
            assert_eq!(info.parked, vec!["stuck".to_string()]);
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn event_budget_guards_against_runaway_models() {
    let mut sim = Sim::new();
    sim.set_max_events(100);
    fn reschedule(sc: &ftmpi_sim::SimCtx) {
        sc.schedule_in(SimDuration::from_nanos(1), reschedule);
    }
    sim.schedule(SimTime::ZERO, reschedule);
    match sim.run() {
        Err(SimError::EventBudgetExhausted { executed }) => assert_eq!(executed, 100),
        other => panic!("expected budget error, got {other:?}"),
    }
}

#[test]
fn max_time_stops_the_run() {
    let mut sim = Sim::new();
    sim.set_max_time(SimTime::from_nanos(50));
    sim.spawn("late", |mut ctx| async move {
        ctx.sleep(SimDuration::from_nanos(200)).await;
        panic!("must not run past the horizon");
    });
    let report = sim.run().unwrap();
    assert!(report.stopped);
    assert!(report.final_time <= SimTime::from_nanos(200));
}

#[test]
fn processes_spawned_from_events_run() {
    let mut sim = Sim::new();
    let flag = sim.shared_flag();
    let f2 = flag.clone();
    sim.schedule(SimTime::from_nanos(10), move |sc| {
        let f3 = f2.clone();
        sc.spawn("child", move |mut ctx| async move {
            ctx.sleep(SimDuration::from_nanos(5)).await;
            f3.set();
        });
    });
    let report = sim.run().unwrap();
    assert!(flag.get());
    assert_eq!(report.final_time, SimTime::from_nanos(15));
}

#[test]
fn identical_runs_produce_identical_reports() {
    fn run_once() -> (u64, u64) {
        let mut sim = Sim::new();
        for i in 0..10u64 {
            sim.spawn(format!("p{i}"), move |mut ctx| async move {
                for k in 0..5 {
                    ctx.sleep(SimDuration::from_nanos(1 + (i * 7 + k) % 13))
                        .await;
                }
            });
        }
        let report = sim.run().unwrap();
        (report.final_time.as_nanos(), report.events_executed)
    }
    assert_eq!(run_once(), run_once());
}

#[test]
fn trace_collects_lifecycle_events() {
    let mut sim = Sim::new();
    sim.enable_trace();
    let p = sim.spawn("traced", |mut ctx| async move {
        ctx.sleep(SimDuration::from_nanos(3)).await
    });
    sim.schedule(SimTime::from_nanos(1), move |sc| {
        sc.trace("test", Some(p), || "hello".to_string());
    });
    let report = sim.run().unwrap();
    assert!(report
        .trace
        .iter()
        .any(|e| matches!(e.kind, ftmpi_sim::TraceKind::Spawn)));
    assert!(report
        .trace
        .iter()
        .any(|e| matches!(e.kind, ftmpi_sim::TraceKind::Model("test")) && e.detail == "hello"));
    assert!(report
        .trace
        .iter()
        .any(|e| matches!(e.kind, ftmpi_sim::TraceKind::Exit)));
}

#[test]
fn many_processes_scale() {
    let mut sim = Sim::new();
    let counter = Arc::new(Mutex::new(0u64));
    for i in 0..600 {
        let c = Arc::clone(&counter);
        sim.spawn(format!("w{i}"), move |mut ctx| async move {
            ctx.sleep(SimDuration::from_nanos(i)).await;
            *c.lock() += 1;
        });
    }
    sim.run().unwrap();
    assert_eq!(*counter.lock(), 600);
}

/// The coroutine backend must host far more processes than any thread pool
/// could: 50k sleepers complete with bounded OS threads (the scale_bench
/// binary exercises the full 10⁵-rank workload).
#[test]
fn coroutine_backend_hosts_tens_of_thousands_of_processes() {
    let mut sim = Sim::new();
    sim.force_threaded(false);
    let counter = Arc::new(Mutex::new(0u64));
    for i in 0..50_000u64 {
        let c = Arc::clone(&counter);
        sim.spawn(format!("w{i}"), move |mut ctx| async move {
            ctx.sleep(SimDuration::from_nanos(1 + i % 97)).await;
            *c.lock() += 1;
        });
    }
    sim.run().unwrap();
    assert_eq!(*counter.lock(), 50_000);
}

/// Kill/respawn churn: pids stay sequential and are never reused, killed
/// pids keep resolving (as not-alive) instead of aliasing later processes,
/// and replacements spawned after kills get fresh slots. This is the access
/// pattern the dense process table must support.
#[test]
fn kill_respawn_churn_keeps_pids_distinct() {
    let mut sim = Sim::new();
    let finished: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let mut pids = Vec::new();
    for i in 0..8u64 {
        let f = Arc::clone(&finished);
        pids.push(sim.spawn(format!("gen0-{i}"), move |mut ctx| async move {
            ctx.sleep(SimDuration::from_secs(10)).await;
            f.lock().push(i);
        }));
    }
    // Allocation is strictly increasing (pids are sequential, never reused).
    assert!(pids.windows(2).all(|w| w[0] < w[1]));

    // Kill the odd pids mid-run, then spawn replacements from the event;
    // their pids must continue the sequence, not reuse the dead slots.
    let victims: Vec<_> = pids.iter().copied().skip(1).step_by(2).collect();
    let survivors: Vec<_> = pids.iter().copied().step_by(2).collect();
    let v2 = victims.clone();
    let f = Arc::clone(&finished);
    sim.schedule(SimTime::from_nanos(5), move |sc| {
        for pid in &v2 {
            assert!(sc.is_alive(*pid));
            sc.kill(*pid);
            sc.kill(*pid); // double kill must stay a no-op
        }
        for (k, pid) in v2.iter().enumerate() {
            let f = f.clone();
            let new = sc.spawn(format!("gen1-{k}"), move |mut ctx| async move {
                ctx.sleep(SimDuration::from_secs(1)).await;
                f.lock().push(100 + k as u64);
            });
            assert!(new > *pid, "pid {new} reused or preceded {pid}");
        }
    });
    let report = sim.run().unwrap();
    for pid in &victims {
        let exit = report
            .exits
            .iter()
            .find(|(p, _, _)| p == pid)
            .map(|(_, _, e)| e.clone());
        assert_eq!(exit, Some(ProcessExit::Killed), "{pid}");
    }
    for pid in &survivors {
        let exit = report
            .exits
            .iter()
            .find(|(p, _, _)| p == pid)
            .map(|(_, _, e)| e.clone());
        assert_eq!(exit, Some(ProcessExit::Normal), "{pid}");
    }
    let mut done = finished.lock().clone();
    done.sort_unstable();
    assert_eq!(done, vec![0, 2, 4, 6, 100, 101, 102, 103]);
}

/// Killing with tracing disabled takes the lock-free fast path; killing with
/// tracing enabled must still record the event. Both paths must agree on
/// semantics.
#[test]
fn kill_traces_only_when_tracing_enabled() {
    for tracing in [false, true] {
        let mut sim = Sim::new();
        if tracing {
            sim.enable_trace();
        }
        let victim = sim.spawn("victim", |mut ctx| async move {
            ctx.sleep(SimDuration::from_secs(5)).await
        });
        sim.schedule(SimTime::from_nanos(3), move |sc| sc.kill(victim));
        let report = sim.run().unwrap();
        let kills = report
            .trace
            .iter()
            .filter(|e| matches!(e.kind, ftmpi_sim::TraceKind::Kill))
            .count();
        assert_eq!(kills, usize::from(tracing));
        assert!(report
            .exits
            .iter()
            .any(|(p, _, e)| *p == victim && *e == ProcessExit::Killed));
    }
}

#[test]
fn max_time_never_advances_past_the_horizon() {
    let mut sim = Sim::new();
    sim.set_max_time(SimTime::from_nanos(50));
    sim.schedule(SimTime::from_nanos(200), |_sc| {
        panic!("must not run past the horizon");
    });
    let report = sim.run().unwrap();
    assert!(report.stopped);
    assert!(
        report.final_time <= SimTime::from_nanos(50),
        "clock advanced past max_time: {:?}",
        report.final_time
    );
}

#[test]
fn same_time_wake_and_kill_batch_into_one_handoff() {
    // Threaded backend: a wake and a kill landing at the same instant share
    // one token handoff (PR 3's batching). The coroutine backend has no
    // handoffs to save — the equivalent schedule is checked by the
    // differential test below.
    let mut sim = Sim::new();
    sim.force_threaded(true);
    let victim = sim.spawn("victim", |mut ctx| async move {
        ctx.sleep(SimDuration::from_secs(5)).await;
        // The kill wake is already pending when this suspension happens, so
        // the process unwinds here without another kernel round-trip.
        ctx.sleep(SimDuration::from_secs(10)).await;
        unreachable!("killed at 5s");
    });
    // Route the kill through a t=1s hop so its 5s call is pushed *after*
    // the sleeper's completion call: at 5s the sleep wake is queued first,
    // then the Killed resume lands right behind it — two same-time wakes
    // on one lane, delivered as one batch.
    sim.schedule(SimTime::from_nanos(1_000_000_000), move |sc| {
        sc.schedule_in(SimDuration::from_secs(4), move |sc| sc.kill(victim));
    });
    let report = sim.run().unwrap();
    assert!(report
        .exits
        .iter()
        .any(|(p, _, e)| *p == victim && *e == ProcessExit::Killed));
    if std::env::var_os("FTMPI_NO_BATCH").is_none() {
        assert_eq!(
            report.handoffs_saved, 1,
            "both wakes should share a handoff"
        );
    } else {
        assert_eq!(report.handoffs_saved, 0);
    }
}

#[test]
fn pool_reuses_rank_threads_across_sims() {
    // The lease pool serves the threaded backend only; force it so the test
    // keeps covering the pool when the coroutine backend is the default.
    let before = ftmpi_sim::pool_stats();
    for round in 0..3 {
        let mut sim = Sim::new();
        sim.force_threaded(true);
        for i in 0..4 {
            sim.spawn(format!("r{round}-{i}"), |mut ctx| async move {
                ctx.sleep(SimDuration::from_nanos(1)).await;
            });
        }
        sim.run().unwrap();
        // Sim teardown quiesces its lease group, so every worker is back
        // in the idle queue before the next round spawns.
    }
    let after = ftmpi_sim::pool_stats();
    assert!(
        after.checkouts >= before.checkouts + 12,
        "12 spawns must be visible in the pool counters: {before:?} -> {after:?}"
    );
    if std::env::var_os("FTMPI_NO_POOL").is_none() {
        assert!(
            after.reused > before.reused,
            "serial churn must reuse parked workers: {before:?} -> {after:?}"
        );
    }
}

/// Drive one mixed workload (sleep chains, reply-completed execs, kills at
/// degenerate instants, a panicless respawn) through both backends and
/// compare every observable of the run report.
#[test]
fn backends_produce_identical_reports() {
    fn run(threaded: bool) -> (u64, u64, Vec<(String, ProcessExit)>, usize) {
        let mut sim = Sim::new();
        sim.force_threaded(threaded);
        sim.enable_trace();
        let log: Arc<Mutex<Vec<(String, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        for (name, step) in [("a", 3u64), ("b", 5u64), ("c", 7u64)] {
            let log = Arc::clone(&log);
            sim.spawn(name, move |mut ctx| async move {
                for _ in 0..4 {
                    ctx.sleep(SimDuration::from_secs(step)).await;
                    log.lock()
                        .push((ctx.name().to_string(), ctx.now().as_nanos()));
                }
            });
        }
        let victim = sim.spawn("victim", |mut ctx| async move {
            ctx.sleep(SimDuration::from_secs(60)).await;
        });
        // Kill lands at the exact instant of a's second sleep completion.
        sim.schedule(SimTime::from_nanos(6_000_000_000), move |sc| {
            sc.kill(victim)
        });
        let report = sim.run().unwrap();
        let exits = report
            .exits
            .iter()
            .map(|(_, n, e)| (n.clone(), e.clone()))
            .collect();
        (
            report.final_time.as_nanos(),
            report.events_executed,
            exits,
            report.trace.len(),
        )
    }
    assert_eq!(run(false), run(true));
}

/// Kill delivered while the process is suspended mid-`exec` (its model call
/// already queued but not yet run): the pending call must be cancelled and
/// the exit recorded at the kill instant, identically on both backends.
#[test]
fn kill_during_suspension_cancels_pending_exec() {
    fn run(threaded: bool) -> (u64, u64, bool) {
        let mut sim = Sim::new();
        sim.force_threaded(threaded);
        let side_effect = sim.shared_flag();
        let fx = side_effect.clone();
        let victim = sim.spawn("victim", move |mut ctx| async move {
            // Suspend on an exec whose model call runs far in the future;
            // the kill arrives first, so the call must never run.
            ctx.advance(SimDuration::from_secs(100));
            ctx.exec::<(), _>(move |sc, reply| {
                fx.set();
                reply.complete(sc, ());
            })
            .await;
        });
        sim.schedule(SimTime::from_nanos(10), move |sc| sc.kill(victim));
        let report = sim.run().unwrap();
        let killed = report
            .exits
            .iter()
            .any(|(p, _, e)| *p == victim && *e == ProcessExit::Killed);
        assert!(killed);
        (
            report.final_time.as_nanos(),
            report.events_executed,
            side_effect.get(),
        )
    }
    let coro = run(false);
    let threaded = run(true);
    assert_eq!(coro, threaded);
    assert!(!coro.2, "cancelled exec must not mutate model state");
}

/// A process killed before its first wake (spawned at a later start time)
/// never starts; the replacement spawned in the same event sequence runs to
/// completion — the restart-while-embryonic state transition.
#[test]
fn kill_before_first_wake_drops_the_unstarted_process() {
    fn run(threaded: bool) -> (u64, bool, bool) {
        let mut sim = Sim::new();
        sim.force_threaded(threaded);
        let started = sim.shared_flag();
        let replaced = sim.shared_flag();
        let s2 = started.clone();
        let victim = sim.spawn_at(
            SimTime::from_nanos(100),
            "late-starter",
            move |mut ctx| async move {
                s2.set();
                ctx.sleep(SimDuration::from_nanos(1)).await;
            },
        );
        let r2 = replaced.clone();
        sim.schedule(SimTime::from_nanos(10), move |sc| {
            sc.kill(victim);
            sc.spawn("replacement", move |mut ctx| async move {
                ctx.sleep(SimDuration::from_nanos(5)).await;
                r2.set();
            });
        });
        let report = sim.run().unwrap();
        assert!(report
            .exits
            .iter()
            .any(|(p, _, e)| *p == victim && *e == ProcessExit::Killed));
        (report.events_executed, started.get(), replaced.get())
    }
    let coro = run(false);
    assert_eq!(coro, run(true));
    assert!(!coro.1, "killed-before-start process must never run");
    assert!(coro.2, "replacement must complete");
}
