//! Optional structured trace of kernel-level happenings.
//!
//! Disabled by default (zero cost beyond a branch); tests and debugging
//! sessions enable it with [`crate::Sim::enable_trace`] and inspect the
//! collected [`TraceEvent`]s from the run report.

use crate::process::Pid;
use crate::time::SimTime;

/// Category of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A process was spawned.
    Spawn,
    /// A process terminated (normally, killed, or by panic).
    Exit,
    /// A process was killed by the failure injector.
    Kill,
    /// Model-defined record (the label names the subsystem).
    Model(&'static str),
}

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Virtual time of the record.
    pub time: SimTime,
    /// Category.
    pub kind: TraceKind,
    /// Process the record concerns, if any.
    pub pid: Option<Pid>,
    /// Free-form detail.
    pub detail: String,
}

/// Trace collector owned by the kernel.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Tracer {
    pub(crate) fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn record(&mut self, ev: TraceEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }

    pub(crate) fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}
