//! Optional structured trace of kernel-level happenings.
//!
//! Disabled by default (zero cost beyond a branch); tests and debugging
//! sessions enable it with [`crate::Sim::enable_trace`] and inspect the
//! collected [`TraceEvent`]s from the run report.

use crate::process::Pid;
use crate::time::SimTime;

/// Typed protocol event, recorded through [`crate::SimCtx::trace_proto`].
///
/// These are the machine-checkable records the `ftmpi-check` invariant
/// checker consumes: per-channel message sequence numbers on send and
/// delivery, checkpoint-wave markers, image forks, wave commits, and
/// failure restarts. The kernel knows nothing about their semantics — the
/// fields are plain integers (ranks, seqnos, wave numbers) so the type can
/// live below the model crates and stay `Copy`.
///
/// All variants order and hash structurally, which lets checkers build
/// deterministic indices over them without auxiliary keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtoEvent {
    /// An application message was injected into the network.
    Send {
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// Per-channel (src → dst) sequence number.
        seq: u64,
        /// Payload size.
        bytes: u64,
        /// Job epoch the message was launched in.
        epoch: u64,
    },
    /// An application message reached the destination's matching engine.
    Deliver {
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// Per-channel sequence number (as stamped at send time).
        seq: u64,
        /// Epoch stamped on the message at launch.
        epoch: u64,
    },
    /// A checkpointed message (image-pending or channel-log entry) was
    /// re-injected into the destination's runtime during a restart.
    Replay {
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// Per-channel sequence number of the original message.
        seq: u64,
        /// Epoch the original message was launched in (pre-restart).
        epoch: u64,
    },
    /// A checkpoint-wave marker left `from` towards `to`.
    MarkerSend {
        /// Wave number.
        wave: u64,
        /// Marker origin rank.
        from: usize,
        /// Marker destination rank.
        to: usize,
    },
    /// A checkpoint-wave marker from `from` was accepted at `to`
    /// (transport arrival, after duplicate filtering).
    MarkerRecv {
        /// Wave number.
        wave: u64,
        /// Marker origin rank.
        from: usize,
        /// Marker destination rank.
        to: usize,
    },
    /// A rank forked and captured its local checkpoint image.
    Fork {
        /// Wave number.
        wave: u64,
        /// The rank taking its checkpoint.
        rank: usize,
        /// Completed application operations recorded in the image.
        ops: u64,
    },
    /// A message was recorded as channel state (Chandy–Lamport log).
    LogMsg {
        /// Wave number.
        wave: u64,
        /// Sending rank of the logged message.
        src: usize,
        /// Receiving (logging) rank.
        dst: usize,
        /// Per-channel sequence number of the logged message.
        seq: u64,
    },
    /// A checkpoint wave was initiated.
    WaveStart {
        /// Wave number.
        wave: u64,
    },
    /// A checkpoint wave committed (every image and log stored).
    WaveCommit {
        /// Wave number.
        wave: u64,
    },
    /// A checkpoint wave was aborted before committing (failure restart or
    /// checkpoint-server loss); its partial images are garbage-collected.
    WaveAbort {
        /// Wave number.
        wave: u64,
    },
    /// A checkpoint-server node failed: every image replica it stored
    /// became unavailable.
    ServerFail {
        /// The failed server's node id.
        node: u64,
    },
    /// An image replica finished storing on a server (initial push,
    /// reroute, or scrub re-replication). The integrity checker uses
    /// these to prove quarantined servers receive no placements.
    ImageStore {
        /// Wave number the image belongs to.
        wave: u64,
        /// Rank whose image was stored.
        rank: usize,
        /// Server node the replica landed on.
        node: u64,
    },
    /// A stored replica's bits were damaged (injected bit-flip or torn
    /// write). Silent to the runtime; the checker pairs these with
    /// `RestoreImage` records to prove no restore consumed a damaged
    /// copy.
    Corrupt {
        /// Wave number of the damaged replica.
        wave: u64,
        /// Rank of the damaged replica.
        rank: usize,
        /// Server node holding the damaged replica.
        node: u64,
    },
    /// Verify-on-fetch or the scrubber caught a damaged replica.
    CorruptDetected {
        /// Wave number of the damaged replica.
        wave: u64,
        /// Rank of the damaged replica.
        rank: usize,
        /// Server node holding the damaged replica.
        node: u64,
    },
    /// A damaged replica was overwritten from a verified good copy
    /// (scrub re-replication).
    Repair {
        /// Wave number of the repaired replica.
        wave: u64,
        /// Rank of the repaired replica.
        rank: usize,
        /// Server node the clean copy landed on.
        node: u64,
    },
    /// A restore consumed rank `rank`'s image of `wave` from server
    /// `node` (after digest verification).
    RestoreImage {
        /// Wave number restored from.
        wave: u64,
        /// Rank whose image was fetched.
        rank: usize,
        /// Server node the image came from.
        node: u64,
    },
    /// A checkpoint server exceeded the corruption threshold and was
    /// quarantined: no further placements may target it.
    Quarantine {
        /// The quarantined server's node id.
        node: u64,
    },
    /// A global failure-restart: all ranks rolled back, epoch bumped.
    Restart {
        /// The new job epoch.
        epoch: u64,
    },
}

/// Category of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A process was spawned.
    Spawn,
    /// A process terminated (normally, killed, or by panic).
    Exit,
    /// A process was killed by the failure injector.
    Kill,
    /// Model-defined record (the label names the subsystem).
    Model(&'static str),
    /// Typed protocol event (see [`ProtoEvent`]).
    Proto(ProtoEvent),
}

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Virtual time of the record.
    pub time: SimTime,
    /// Category.
    pub kind: TraceKind,
    /// Process the record concerns, if any.
    pub pid: Option<Pid>,
    /// Free-form detail.
    pub detail: String,
}

/// Trace collector owned by the kernel.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Tracer {
    pub(crate) fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn record(&mut self, ev: TraceEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }

    pub(crate) fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of records captured so far. Step-effect attribution in
    /// exploration mode snapshots this before dispatching each event.
    pub(crate) fn len(&self) -> usize {
        self.events.len()
    }
}
