//! Simulated processes: resumable state machines driven by the kernel.
//!
//! A simulated process is an `async` body compiled by rustc into an
//! enum-encoded state machine with one suspension point per kernel
//! interaction ([`ProcCtx::exec`] and the sleep helpers built on it). The
//! kernel owns the machine and steps it inline from the event loop: a
//! Resume event is a direct `poll` call on the scheduler's own thread — no
//! OS thread, no Condvar round-trip, no execution token.
//!
//! The legacy *threaded* backend (`FTMPI_THREADED=1`) drives the same async
//! body on a pooled OS thread instead: the whole body runs inside a single
//! `poll` whose suspension points block on the token-handoff rendezvous
//! ([`Handoff`]), preserving the historical cooperative-thread semantics
//! bit for bit. Exactly one thread runs at a time under that backend —
//! either the kernel loop or one simulated process — so model state never
//! sees concurrent access in either mode.

use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};

use parking_lot::{Condvar, Mutex};

use crate::kernel::SimCtx;
use crate::reply::Reply;
use crate::time::{SimDuration, SimTime};
use crate::wakes::WakeBatch;
use crate::KilledSignal;

/// Identifier of a simulated process. Never reused within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub(crate) u64);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl Pid {
    /// Tiebreak lane for events targeting this process (see
    /// [`SimCtx::schedule_keyed`](crate::SimCtx::schedule_keyed)): same-time
    /// events aimed at one process always run in scheduling order, even
    /// under a perturbation seed, because their order is model semantics
    /// (channel FIFO, op boundaries) rather than an accident.
    pub fn lane(self) -> u64 {
        self.0
    }
}

/// How a process's life ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessExit {
    /// The process function returned.
    Normal,
    /// The process was killed by the failure injector / kernel teardown.
    Killed,
    /// The process function panicked (a bug in model or application code).
    Panicked(String),
}

/// Why a parked process is being resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WakeKind {
    Normal,
    Killed,
}

/// The wake mailbox of a coroutine-backed process: the kernel drive loop
/// deposits exactly one `(kind, time)` wake here immediately before polling
/// the process's state machine, and the machine's pending suspension point
/// consumes it. Single-threaded in practice (only the kernel loop touches
/// it); the mutex exists so the future stays `Send` for storage in the
/// shared kernel state.
pub(crate) struct WakeSlot(Mutex<Option<(WakeKind, SimTime)>>);

impl WakeSlot {
    pub fn new() -> Arc<WakeSlot> {
        Arc::new(WakeSlot(Mutex::new(None)))
    }

    /// Kernel side: deposit the wake the next poll will consume.
    pub fn put(&self, kind: WakeKind, now: SimTime) {
        let prev = self.0.lock().replace((kind, now));
        debug_assert!(
            prev.is_none(),
            "wake deposited while a previous wake was still unconsumed"
        );
    }

    /// Suspension side: consume the pending wake, if any.
    pub fn take(&self) -> Option<(WakeKind, SimTime)> {
        self.0.lock().take()
    }
}

enum HandoffState {
    /// The kernel (or nobody yet) holds the token.
    KernelHeld,
    /// The process holds the token and should run.
    ProcessHeld(WakeKind, SimTime),
    /// The process thread has terminated.
    Exited(ProcessExit),
}

/// Outcome observed by the kernel after handing the token to a process.
pub(crate) enum ResumeOutcome {
    Parked,
    Exited(ProcessExit),
}

struct HandoffInner {
    state: HandoffState,
    /// Wakes delivered with the current token handoff but not yet consumed.
    /// A parked process drains this batch in FIFO order before giving the
    /// token back, so a batch of same-time wakes costs one Condvar
    /// round-trip instead of one per wake. The inline-storage batch keeps
    /// the common cases (one wake, or a handful of coalesced ones) free of
    /// heap allocation.
    pending: WakeBatch,
    /// Wakes the process has consumed during the current `resume_batch`.
    delivered: usize,
}

/// The token-passing rendezvous between the kernel loop and one process
/// (threaded backend only).
pub(crate) struct Handoff {
    inner: Mutex<HandoffInner>,
    cv: Condvar,
}

impl Handoff {
    pub fn new() -> Arc<Handoff> {
        Arc::new(Handoff {
            inner: Mutex::new(HandoffInner {
                state: HandoffState::KernelHeld,
                pending: WakeBatch::new(),
                delivered: 0,
            }),
            cv: Condvar::new(),
        })
    }

    /// Kernel side: deliver a single wake (see [`Handoff::resume_batch`]).
    pub fn resume(&self, kind: WakeKind, now: SimTime) -> ResumeOutcome {
        self.resume_batch(WakeBatch::single(kind, now)).0
    }

    /// Kernel side: give the token to the process with a non-empty FIFO
    /// batch of wakes and wait until it parks or exits. Returns the outcome
    /// and how many of the wakes the process actually consumed (a process
    /// that exits mid-batch leaves the rest undelivered, exactly like the
    /// unbatched kernel dropping stale wakes for a dead process). Must be
    /// called *without* holding the kernel state lock.
    pub fn resume_batch(&self, mut wakes: WakeBatch) -> (ResumeOutcome, usize) {
        let mut st = self.inner.lock();
        match st.state {
            HandoffState::Exited(ref e) => return (ResumeOutcome::Exited(e.clone()), 0),
            HandoffState::KernelHeld => {
                let (kind, now) = wakes.pop_front().expect("resume_batch with no wakes");
                st.pending = wakes;
                st.delivered = 1;
                st.state = HandoffState::ProcessHeld(kind, now);
                self.cv.notify_all();
            }
            HandoffState::ProcessHeld(..) => {
                unreachable!("kernel resumed a process that already holds the token")
            }
        }
        loop {
            match st.state {
                HandoffState::KernelHeld => {
                    debug_assert!(st.pending.is_empty(), "token returned with wakes pending");
                    return (ResumeOutcome::Parked, st.delivered);
                }
                HandoffState::Exited(ref e) => {
                    let status = e.clone();
                    // Leftover wakes were aimed at a now-dead process; they
                    // are stale by definition and must not be re-queued.
                    st.pending.clear();
                    return (ResumeOutcome::Exited(status), st.delivered);
                }
                HandoffState::ProcessHeld(..) => self.cv.wait(&mut st),
            }
        }
    }

    /// Process side: give the token back and wait for the next wake.
    /// Returns the wake kind and the kernel time of the resume.
    pub fn park(&self) -> (WakeKind, SimTime) {
        let mut st = self.inner.lock();
        debug_assert!(
            matches!(st.state, HandoffState::ProcessHeld(..)),
            "park() called by a process that does not hold the token"
        );
        if let Some((kind, now)) = st.pending.pop_front() {
            // Fast path: consume the next batched wake while keeping the
            // token — no Condvar round-trip through the kernel.
            st.delivered += 1;
            st.state = HandoffState::ProcessHeld(kind, now);
            return (kind, now);
        }
        st.state = HandoffState::KernelHeld;
        self.cv.notify_all();
        loop {
            if let HandoffState::ProcessHeld(kind, now) = st.state {
                return (kind, now);
            }
            self.cv.wait(&mut st);
        }
    }

    /// Process side: wait for the very first wake after spawn.
    pub fn wait_first_wake(&self) -> (WakeKind, SimTime) {
        let mut st = self.inner.lock();
        loop {
            if let HandoffState::ProcessHeld(kind, now) = st.state {
                return (kind, now);
            }
            self.cv.wait(&mut st);
        }
    }

    /// Process side: announce termination and release the token.
    pub fn exit(&self, status: ProcessExit) {
        let mut st = self.inner.lock();
        st.state = HandoffState::Exited(status);
        self.cv.notify_all();
    }
}

/// How this process's suspension points synchronize with the kernel.
pub(crate) enum Driver {
    /// Default backend: the kernel polls the state machine inline; a
    /// suspension returns `Pending` and the next wake arrives through the
    /// [`WakeSlot`] immediately before the next poll.
    Coro(Arc<WakeSlot>),
    /// Legacy backend (`FTMPI_THREADED=1`): a suspension blocks the pooled
    /// OS thread on the token handoff and returns `Ready` once woken, so
    /// the whole process body completes in a single outer poll.
    Threaded(Arc<Handoff>),
}

/// One suspension point: resolves to the next `(kind, time)` wake.
struct Suspend<'a> {
    driver: &'a Driver,
}

impl Future for Suspend<'_> {
    type Output = (WakeKind, SimTime);

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        match self.driver {
            Driver::Coro(slot) => match slot.take() {
                Some(wake) => Poll::Ready(wake),
                None => Poll::Pending,
            },
            Driver::Threaded(handoff) => Poll::Ready(handoff.park()),
        }
    }
}

/// Per-process handle given to the process body.
///
/// Carries the *lazy local clock*: [`advance`](ProcCtx::advance) models
/// computation without kernel interaction, while [`exec`](ProcCtx::exec)
/// synchronizes with the kernel at the process's local time.
pub struct ProcCtx {
    pub(crate) pid: Pid,
    pub(crate) name: Arc<str>,
    pub(crate) driver: Driver,
    pub(crate) shared: Arc<crate::kernel::Shared>,
    pub(crate) local_time: SimTime,
}

impl ProcCtx {
    /// This process's identifier.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The process name given at spawn time.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The process-local virtual clock. Always at or ahead of kernel time.
    pub fn now(&self) -> SimTime {
        self.local_time
    }

    /// Model `d` of local computation: advances only the local clock.
    pub fn advance(&mut self, d: SimDuration) {
        self.local_time += d;
    }

    /// Schedule `f` on the kernel at this process's local time and suspend
    /// until the model completes the [`Reply`]. Returns the reply value; the
    /// local clock is advanced to the completion time.
    ///
    /// `f` must either call [`Reply::complete`] (or a variant) before
    /// returning, or stash the reply in model state so that a later event
    /// completes it. Waking a process without filling its reply is a model
    /// bug and panics.
    pub async fn exec<R, F>(&mut self, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&SimCtx, Reply<R>) + Send + 'static,
    {
        let slot: Arc<Mutex<Option<R>>> = Arc::new(Mutex::new(None));
        let reply = Reply::new(self.pid, Arc::clone(&slot));
        self.shared
            .schedule_exec(self.pid, self.local_time, move |sc| f(sc, reply));
        let (kind, resume_time) = Suspend {
            driver: &self.driver,
        }
        .await;
        if matches!(kind, WakeKind::Killed) {
            // Threaded backend only: unwind the OS thread. The coroutine
            // backend never delivers a kill wake — the kernel drops the
            // state machine instead (the suspension simply never resolves).
            std::panic::panic_any(KilledSignal);
        }
        if resume_time > self.local_time {
            self.local_time = resume_time;
        }
        let value = slot
            .lock()
            .take()
            .expect("process woken without a completed reply (model bug)");
        value
    }

    /// Suspend until the kernel clock catches up with the local clock.
    ///
    /// Useful to make locally-accumulated compute time observable (e.g. at
    /// the end of a process, or before reading shared state).
    pub async fn sleep_until_local(&mut self) {
        self.exec::<(), _>(|sc, reply| reply.complete(sc, ())).await
    }

    /// Advance the local clock by `d` and synchronize with the kernel:
    /// a timed wait during which other processes run.
    pub async fn sleep(&mut self, d: SimDuration) {
        self.advance(d);
        self.sleep_until_local().await;
    }
}

/// A tiny thread-safe boolean used by tests and examples to observe
/// completion from outside the simulation.
#[derive(Debug, Clone, Default)]
pub struct SharedFlag(Arc<AtomicBool>);

impl SharedFlag {
    /// Create an unset flag.
    pub fn new() -> Self {
        Self::default()
    }
    /// Raise the flag.
    pub fn set(&self) {
        self.0.store(true, Ordering::SeqCst);
    }
    /// Read the flag.
    pub fn get(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}
