//! Schedule-policy hook: controlled choice among commuting same-time events.
//!
//! The kernel's canonical order among same-instant events is `(tiekey, seq)`
//! — an accident of scheduling order that model semantics must not depend
//! on. PR 2's perturbation seeds *sample* alternative orders; a
//! [`SchedulePolicy`] lets a controller (the `ftmpi-check explore` DPOR
//! loop) *enumerate* them: at every instant with more than one ready
//! schedulable unit, the kernel presents the candidates and the policy
//! picks which one runs next.
//!
//! A *candidate* is either a laneless event (freely permutable by
//! definition) or the front event of a tiebreak lane — same-lane same-time
//! events keep their scheduling order under every policy, exactly as they
//! do under every perturbation seed, because intra-lane order is defined
//! model semantics (channel FIFO, per-process op order), not scheduler
//! freedom. The policy therefore explores precisely the space the
//! perturbation seeds sample, no more.
//!
//! With a policy installed the kernel also records a [`Decision`] per
//! multi-candidate instant and a [`StepRecord`] per executed event, so a
//! controller can replay prefixes deterministically (feed the chosen
//! indices back through [`PrescribedPolicy`]) and attribute trace effects
//! to steps. Without a policy none of this machinery runs: ordinary
//! simulations take the exact pop path they always took.

use crate::process::Pid;
use crate::time::SimTime;

/// What kind of schedulable unit a candidate is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CandidateKind {
    /// A model closure (`Call` event).
    Call,
    /// A token handoff waking the given process.
    Resume(Pid),
    /// A scheduled network-fault transition.
    LinkFault,
}

/// One schedulable unit offered to a [`SchedulePolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Candidate {
    /// The event's kernel sequence number (unique within a run; replays of
    /// the same choice prefix reproduce identical sequence numbers).
    pub seq: u64,
    /// The event's tiebreak lane (`None`: laneless, freely permutable).
    pub lane: Option<u64>,
    /// Event category.
    pub kind: CandidateKind,
}

/// A recorded scheduling decision: the candidate set at one instant and
/// which candidate the policy chose.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Virtual time of the tied instant.
    pub time: SimTime,
    /// Index into [`crate::RunReport::steps`] of the step that executed
    /// the chosen candidate.
    pub step: usize,
    /// The candidates offered, in canonical pop order (so index 0 is the
    /// event the policy-free kernel would have run).
    pub candidates: Vec<Candidate>,
    /// Index of the chosen candidate.
    pub chosen: usize,
}

/// One executed event in a policy-driven run: which event ran and where
/// its observable effects start in the recorded trace.
#[derive(Debug, Clone, Copy)]
pub struct StepRecord {
    /// Kernel sequence number of the executed event.
    pub seq: u64,
    /// Virtual time the event executed at.
    pub time: SimTime,
    /// Trace length when the event was popped: the step's effects are the
    /// trace records in `[trace_lo, next_step.trace_lo)`. (Valid because
    /// execution is cooperative — everything a step causes, including the
    /// trace records of a resumed process, is recorded before the kernel
    /// pops the next event.)
    pub trace_lo: usize,
}

/// A controller choosing among same-instant candidates.
///
/// `choose` is called only when more than one candidate is ready; the
/// return value is clamped to the candidate range. Implementations must be
/// deterministic functions of their own state and the presented candidates
/// — the kernel replays a run by replaying the policy.
pub trait SchedulePolicy: Send {
    /// Pick the index of the candidate to execute next.
    fn choose(&mut self, time: SimTime, candidates: &[Candidate]) -> usize;
}

/// Policy that follows a prescribed list of choice indices, then falls
/// back to 0 (the canonical pop order) once the prescription is spent.
///
/// This is the DPOR frontier's replay vehicle: a schedule is identified by
/// its decision prefix, and `PrescribedPolicy::new(prefix)` deterministically
/// re-executes it — the canonical tail makes every prescription a complete
/// schedule.
#[derive(Debug, Default, Clone)]
pub struct PrescribedPolicy {
    choices: Vec<usize>,
    cursor: usize,
}

impl PrescribedPolicy {
    /// A policy replaying `choices`, canonical beyond them.
    pub fn new(choices: Vec<usize>) -> PrescribedPolicy {
        PrescribedPolicy { choices, cursor: 0 }
    }
}

impl SchedulePolicy for PrescribedPolicy {
    fn choose(&mut self, _time: SimTime, candidates: &[Candidate]) -> usize {
        let pick = self.choices.get(self.cursor).copied().unwrap_or(0);
        self.cursor += 1;
        pick.min(candidates.len().saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(seq: u64) -> Candidate {
        Candidate {
            seq,
            lane: None,
            kind: CandidateKind::Call,
        }
    }

    #[test]
    fn prescribed_policy_replays_then_goes_canonical() {
        let mut p = PrescribedPolicy::new(vec![2, 1]);
        let cs = [cand(0), cand(1), cand(2)];
        assert_eq!(p.choose(SimTime::ZERO, &cs), 2);
        assert_eq!(p.choose(SimTime::ZERO, &cs), 1);
        assert_eq!(p.choose(SimTime::ZERO, &cs), 0, "past the prescription");
        // Out-of-range prescriptions clamp instead of panicking (a shorter
        // candidate list on replay means the abstraction drifted; the
        // explorer detects that via fingerprints, not via a crash).
        let mut q = PrescribedPolicy::new(vec![9]);
        assert_eq!(q.choose(SimTime::ZERO, &cs[..2]), 1);
    }
}
