//! The rank-thread pool: reusable OS worker threads for simulated processes.
//!
//! Spawning one OS thread per simulated rank per run is the dominant fixed
//! cost of a sweep: a 14-figure session runs thousands of jobs, each of
//! which used to spawn and join `nranks` threads. The pool keeps finished
//! workers parked instead of joining them: a [`Sim`](crate::Sim) checks a
//! worker out for the lifetime of one simulated process and the worker
//! returns itself to the global free list when the process exits, so the
//! whole sweep reuses a bounded set of OS threads.
//!
//! Leases are also the capacity signal for the experiment engine: every
//! checked-out worker (pooled or not) counts toward the process-wide *live
//! thread* gauge, which [`wait_live_below`] exposes so a sweep can gate job
//! admission on actual thread occupancy instead of a pessimistic
//! per-job reservation.
//!
//! Escape hatch: setting `FTMPI_NO_POOL` (to any value) restores the
//! spawn-per-process behaviour — used by the byte-identity checks in CI and
//! available for debugging (dedicated threads keep the `sim-<pid>-<name>`
//! thread names).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

/// A unit of work handed to a worker thread (one simulated process's
/// trampoline, lease bookkeeping excluded — the pool owns that).
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Per-[`Sim`](crate::Sim) lease counter: how many of this simulation's
/// process threads are still running their trampoline. Teardown waits for
/// it to reach zero, which restores the old join-all guarantee without
/// joining pooled workers.
#[derive(Default)]
pub(crate) struct LeaseGroup {
    count: AtomicUsize,
}

/// One worker's mailbox: the pool delivers `(job, group)` pairs here.
struct WorkerSlot {
    job: Mutex<Option<(Job, Arc<LeaseGroup>)>>,
    cv: Condvar,
}

struct PoolInner {
    /// Workers waiting for a job.
    idle: Mutex<VecDeque<Arc<WorkerSlot>>>,
    /// Live (checked-out) process threads, pooled or dedicated. Guarded by
    /// a mutex (not an atomic) so [`wait_live_below`] and the per-group
    /// teardown wait can block on `released` without missed wakeups.
    live: Mutex<usize>,
    released: Condvar,
    threads_created: AtomicU64,
    checkouts: AtomicU64,
    reused: AtomicU64,
}

fn pool() -> &'static PoolInner {
    static POOL: OnceLock<PoolInner> = OnceLock::new();
    POOL.get_or_init(|| PoolInner {
        idle: Mutex::new(VecDeque::new()),
        live: Mutex::new(0),
        released: Condvar::new(),
        threads_created: AtomicU64::new(0),
        checkouts: AtomicU64::new(0),
        reused: AtomicU64::new(0),
    })
}

/// `false` when `FTMPI_NO_POOL` is set: every process gets a dedicated,
/// joined OS thread as before. Read once per process.
fn pooling_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("FTMPI_NO_POOL").is_none())
}

/// Stack size for simulated-process threads (pooled or not): the model
/// parks almost immediately, so a small stack keeps hundreds of ranks
/// cheap.
const STACK_SIZE: usize = 256 * 1024;

fn lease_begin(group: &Arc<LeaseGroup>) {
    let p = pool();
    *p.live.lock() += 1;
    group.count.fetch_add(1, Ordering::SeqCst);
    p.checkouts.fetch_add(1, Ordering::Relaxed);
}

fn lease_end(group: &Arc<LeaseGroup>) {
    let p = pool();
    {
        let mut live = p.live.lock();
        *live = live.saturating_sub(1);
        // Decremented under the same lock the waiters hold, so a
        // `wait_live_below` / `wait_group_idle` sleeper can never miss it.
        group.count.fetch_sub(1, Ordering::SeqCst);
    }
    p.released.notify_all();
}

fn worker_loop(slot: Arc<WorkerSlot>, mut work: (Job, Arc<LeaseGroup>)) {
    loop {
        let (job, group) = work;
        job();
        lease_end(&group);
        // Back to the free list, then wait for the next checkout. A
        // checkout may deliver into the mailbox before we start waiting;
        // the mutex-guarded `take` handles either order.
        pool().idle.lock().push_back(Arc::clone(&slot));
        let mut mailbox = slot.job.lock();
        loop {
            if let Some(next) = mailbox.take() {
                work = next;
                break;
            }
            slot.cv.wait(&mut mailbox);
        }
    }
}

/// Run `job` on a leased worker thread. Pooled mode reuses an idle worker
/// (or grows the pool by one); the escape hatch spawns a dedicated thread
/// and returns its handle for joining.
pub(crate) fn spawn_process(
    thread_name: String,
    group: &Arc<LeaseGroup>,
    job: Job,
) -> Option<JoinHandle<()>> {
    lease_begin(group);
    let p = pool();
    if !pooling_enabled() {
        let group = Arc::clone(group);
        p.threads_created.fetch_add(1, Ordering::Relaxed);
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .stack_size(STACK_SIZE)
            .spawn(move || {
                job();
                lease_end(&group);
            })
            .expect("failed to spawn simulated process thread");
        return Some(handle);
    }
    let reused = p.idle.lock().pop_front();
    match reused {
        Some(slot) => {
            p.reused.fetch_add(1, Ordering::Relaxed);
            let mut mailbox = slot.job.lock();
            debug_assert!(mailbox.is_none(), "idle worker already holds a job");
            *mailbox = Some((job, Arc::clone(group)));
            slot.cv.notify_all();
        }
        None => {
            let n = p.threads_created.fetch_add(1, Ordering::Relaxed);
            let slot = Arc::new(WorkerSlot {
                job: Mutex::new(None),
                cv: Condvar::new(),
            });
            let group = Arc::clone(group);
            std::thread::Builder::new()
                .name(format!("sim-pool-{n}"))
                .stack_size(STACK_SIZE)
                .spawn(move || worker_loop(Arc::clone(&slot), (job, group)))
                .expect("failed to spawn pool worker thread");
        }
    }
    None
}

/// Block until every process thread leased through `group` has finished
/// its trampoline (the pooled replacement for joining per-process threads).
pub(crate) fn wait_group_idle(group: &LeaseGroup) {
    let p = pool();
    let mut live = p.live.lock();
    while group.count.load(Ordering::SeqCst) > 0 {
        p.released.wait(&mut live);
    }
}

/// Block until fewer than `cap` simulated-process threads are live across
/// the whole process (clamped to ≥1 so the wait always has an exit). Used
/// by sweep engines to gate job admission on real thread occupancy: a job
/// is admitted as soon as the gauge dips below the watermark, so two large
/// jobs whose ranks are mostly parked can overlap instead of serializing
/// behind an up-front `nranks` reservation.
pub fn wait_live_below(cap: usize) {
    let cap = cap.max(1);
    let p = pool();
    let mut live = p.live.lock();
    while *live >= cap {
        p.released.wait(&mut live);
    }
}

/// Pool occupancy counters (process-wide, monotonic except `live`/`idle`).
#[derive(Debug, Clone, Copy)]
pub struct PoolStats {
    /// OS threads ever created for simulated processes (pooled workers
    /// plus dedicated escape-hatch threads).
    pub threads_created: u64,
    /// Process-thread leases granted (one per simulated process spawn).
    pub checkouts: u64,
    /// Leases served by re-using an idle pooled worker.
    pub reused: u64,
    /// Currently leased process threads.
    pub live: usize,
    /// Pooled workers currently parked on the free list.
    pub idle: usize,
}

/// Snapshot the pool's counters.
pub fn pool_stats() -> PoolStats {
    let p = pool();
    PoolStats {
        threads_created: p.threads_created.load(Ordering::Relaxed),
        checkouts: p.checkouts.load(Ordering::Relaxed),
        reused: p.reused.load(Ordering::Relaxed),
        live: *p.live.lock(),
        idle: p.idle.lock().len(),
    }
}

impl PoolStats {
    /// One-line human summary, used by the bench binaries.
    pub fn summary(&self) -> String {
        format!(
            "rank-thread pool: {} checkouts, {} reused, {} OS threads created, {} idle",
            self.checkouts, self.reused, self.threads_created, self.idle
        )
    }
}
