//! Completion tokens connecting model event handlers to parked processes.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::SimCtx;
use crate::process::Pid;
use crate::time::SimTime;

/// The write-half of a pending [`ProcCtx::exec`](crate::ProcCtx::exec) call.
///
/// Model code receives a `Reply<R>` together with the request. It must
/// eventually call [`complete`](Reply::complete) (immediately or from a later
/// event) to deliver the result and wake the process. Dropping a `Reply`
/// without completing it leaves the process parked forever — the kernel
/// reports this as a deadlock, which is the desired loud failure for a model
/// bug (or the correct silent behaviour for a process that is about to be
/// killed).
#[derive(Debug)]
pub struct Reply<R> {
    pid: Pid,
    slot: Arc<Mutex<Option<R>>>,
}

impl<R: Send + 'static> Reply<R> {
    pub(crate) fn new(pid: Pid, slot: Arc<Mutex<Option<R>>>) -> Self {
        Reply { pid, slot }
    }

    /// The process waiting on this reply.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Deliver `value` and wake the process at the current event time.
    pub fn complete(self, sc: &SimCtx, value: R) {
        *self.slot.lock() = Some(value);
        sc.resume(self.pid);
    }

    /// Deliver `value` and wake the process at the (future) time `at`.
    pub fn complete_at(self, sc: &SimCtx, at: SimTime, value: R) {
        let Reply { pid, slot } = self;
        *slot.lock() = Some(value);
        sc.resume_at(pid, at);
    }
}
