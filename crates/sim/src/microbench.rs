//! Op driver for the kernel event-queue microbenchmark.
//!
//! The sim crates forbid wall-clock reads (the determinism lint), so this
//! module only *drives* a queue through a deterministic operation mix;
//! `ftmpi-bench`'s `kernel_bench` binary wraps it with timing and emits
//! `BENCH_kernel.json`. Keeping the driver here lets it use the crate-private
//! [`EventQueue`](crate::event) directly — the benchmark measures the real
//! queue, tombstones, arena and all, not a stripped-down model of it.

use crate::event::{EventId, EventKind, EventQueue};
use crate::time::SimTime;

/// Event-time density profile of a drive run. The three profiles bracket the
/// kernel's real workloads: coordinated-checkpoint marker storms put
/// thousands of events at one instant, chunked flows cluster within
/// microseconds, and timers/retries scatter across seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Density {
    /// Dense same-instant bursts: every event lands at the current time.
    SameTime,
    /// Near time: gaps up to one microsecond.
    NearTime,
    /// Wide spread: gaps up to two simulated seconds.
    WideSpread,
}

impl Density {
    /// All profiles, in reporting order.
    pub const ALL: [Density; 3] = [Density::SameTime, Density::NearTime, Density::WideSpread];

    /// Short machine-readable name (used as the JSON key in
    /// `BENCH_kernel.json`).
    pub fn name(self) -> &'static str {
        match self {
            Density::SameTime => "same_time",
            Density::NearTime => "near_time",
            Density::WideSpread => "wide_spread",
        }
    }

    /// Gap in nanoseconds between "now" and a pushed event, derived from one
    /// draw `r` of the driver's generator.
    fn gap(self, r: u64) -> u64 {
        match self {
            Density::SameTime => 0,
            Density::NearTime => r % 1_000,
            Density::WideSpread => r % 2_000_000_000,
        }
    }
}

/// xorshift64* step: the driver's deterministic generator (kept distinct
/// from the queue's own tiekey derivation, which the lane audit pins to the
/// event module).
fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s >> 12;
    *s ^= *s << 25;
    *s ^= *s >> 27;
    s.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Drive `ops` operations against a fresh queue using the chosen backend
/// (`ladder` = false keeps the binary heap), holding the pending-event count
/// near `steady`. The mix is one push + one pop per iteration with a 1-in-16
/// chance of cancelling a random recent event (including already-popped ones
/// — stale timer cancellations are part of the real workload), with
/// compaction triggered at `compact_min_tombstones`.
///
/// Returns a checksum over the popped sequence so the work cannot be
/// optimized away and so callers can cross-check that both backends popped
/// the identical sequence.
pub fn drive(
    ladder: bool,
    density: Density,
    steady: usize,
    ops: u64,
    compact_min_tombstones: usize,
) -> u64 {
    let mut q = EventQueue::with_ladder(ladder);
    q.set_compact_min_tombstones(compact_min_tombstones);
    let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ (steady as u64) ^ ops.rotate_left(17);
    let mut now = 0u64;
    let mut checksum = 0u64;
    let mut recent: Vec<EventId> = Vec::with_capacity(steady.max(1));
    let noop = || EventKind::Call(Box::new(|_| {}));
    for _ in 0..steady {
        let r = xorshift(&mut rng);
        let t = SimTime::from_nanos(now + density.gap(r));
        recent.push(q.push(t, Some(r % 64), noop()));
    }
    for _ in 0..ops {
        let r = xorshift(&mut rng);
        let t = SimTime::from_nanos(now + density.gap(r));
        let id = q.push(t, Some(r % 64), noop());
        if recent.len() == recent.capacity() {
            recent.swap_remove(0);
        }
        recent.push(id);
        if r.is_multiple_of(16) {
            let victim = recent[(xorshift(&mut rng) % recent.len() as u64) as usize];
            q.cancel(victim);
        }
        if let Some(ev) = q.pop() {
            now = ev.time.as_nanos();
            checksum ^= ev.seq.rotate_left((now % 63) as u32) ^ ev.tiekey;
        }
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_backends_produce_the_same_checksum() {
        for density in Density::ALL {
            let heap = drive(false, density, 512, 10_000, 64);
            let ladder = drive(true, density, 512, 10_000, 64);
            assert_eq!(heap, ladder, "checksum diverged for {density:?}");
        }
    }

    #[test]
    fn checksum_is_deterministic_and_workload_sensitive() {
        let a = drive(true, Density::NearTime, 256, 5_000, 64);
        assert_eq!(a, drive(true, Density::NearTime, 256, 5_000, 64));
        assert_ne!(a, drive(true, Density::WideSpread, 256, 5_000, 64));
    }
}
