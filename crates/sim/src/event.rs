//! The kernel event queue.
//!
//! Events are totally ordered by `(time, tiekey, seq)`. The sequence number
//! is assigned when the event is scheduled; because simulated execution is
//! sequential and cooperative, scheduling order — and therefore tie-breaking
//! among same-time events — is deterministic.
//!
//! Two interchangeable backends implement the order:
//!
//! * the **ladder queue** ([`crate::ladder`]) — bucketed time wheels with a
//!   sorted bottom rung, O(1) for the dense same/near-time traffic the
//!   checkpoint protocols generate (the default), and
//! * a **binary heap** of the same keys, kept behind the `FTMPI_NO_LADDER`
//!   environment toggle so CI can prove the two produce byte-identical
//!   figures.
//!
//! Both backends order 32-byte [`Key`](crate::ladder::Key)s; event payloads
//! (boxed model closures) live in an [`EventArena`](crate::arena::EventArena)
//! addressed by slot, so no closure is ever moved by a sort or a sift.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::arena::EventArena;
use crate::kernel::SimCtx;
use crate::ladder::{Key, LadderQueue};
use crate::process::Pid;
use crate::time::SimTime;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u64);

pub(crate) enum EventKind {
    /// Run a model closure on the kernel loop.
    Call(Box<dyn FnOnce(&SimCtx) + Send>),
    /// Hand the execution token to a parked process.
    Resume(Pid, crate::process::WakeKind),
    /// Apply a scheduled network-fault transition (link down / degrade /
    /// restore, partition start / heal). Dispatched exactly like `Call`;
    /// kept as its own variant so the lane audit can prove that fault
    /// transitions — which race with every flow chunk touching the same
    /// link — are never scheduled laneless.
    LinkFault(Box<dyn FnOnce(&SimCtx) + Send>),
}

pub(crate) struct Event {
    pub time: SimTime,
    pub seq: u64,
    /// Secondary sort key among same-time events. Equal to `seq` in normal
    /// runs; a seeded permutation of it under tiebreak perturbation (the
    /// race detector's probe for schedule-sensitive model state).
    pub tiekey: u64,
    pub kind: EventKind,
}

/// SplitMix64 finalizer: a cheap, well-mixed bijection on `u64` used to
/// derive perturbed tiebreak keys from (seed, seq). Tiekey derivation is
/// confined to [`EventQueue::push`] — the lane audit enforces that no other
/// sim-crate code (in particular the queue backends) re-derives one.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Default tombstone count below which [`EventQueue::cancel`] never
/// compacts; keeps small queues (the common case: a handful of pending
/// timers) from paying rebuild costs for no win. Configurable per queue for
/// the kernel microbenchmark ([`EventQueue::set_compact_min_tombstones`]).
const COMPACT_MIN_TOMBSTONES: usize = 64;

/// The scheduling structure: either rung-based or heap-based, same total
/// order. Chosen once per queue (`FTMPI_NO_LADDER` keeps the heap).
enum Backend {
    Ladder(LadderQueue),
    Heap(BinaryHeap<Reverse<Key>>),
}

impl Backend {
    fn push(&mut self, k: Key) {
        match self {
            Backend::Ladder(q) => q.push(k),
            Backend::Heap(h) => h.push(Reverse(k)),
        }
    }

    fn pop(&mut self) -> Option<Key> {
        match self {
            Backend::Ladder(q) => q.pop(),
            Backend::Heap(h) => h.pop().map(|Reverse(k)| k),
        }
    }

    /// Peek needs `&mut`: the ladder may have to spill a bucket to know its
    /// minimum.
    fn peek(&mut self) -> Option<Key> {
        match self {
            Backend::Ladder(q) => q.peek(),
            Backend::Heap(h) => h.peek().map(|Reverse(k)| *k),
        }
    }

    fn len(&self) -> usize {
        match self {
            Backend::Ladder(q) => q.len(),
            Backend::Heap(h) => h.len(),
        }
    }

    fn drain_into(&mut self, out: &mut Vec<Key>) {
        match self {
            Backend::Ladder(q) => q.drain_into(out),
            Backend::Heap(h) => out.extend(std::mem::take(h).into_vec().into_iter().map(|r| r.0)),
        }
    }

    fn rebuild(&mut self, keys: Vec<Key>) {
        match self {
            Backend::Ladder(q) => q.rebuild(keys),
            Backend::Heap(h) => *h = keys.into_iter().map(Reverse).collect(),
        }
    }
}

/// `false` when `FTMPI_NO_LADDER` is set: the queue keeps the binary-heap
/// backend. Both backends realize the same total order, so results are
/// byte-identical either way; the toggle exists for CI to prove exactly
/// that across the full figure grid.
fn ladder_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("FTMPI_NO_LADDER").is_none())
}

/// Min-queue of pending events plus a tombstone set for cancellation.
pub(crate) struct EventQueue {
    backend: Backend,
    arena: EventArena,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
    /// When set, same-time tiebreaks follow a seeded permutation of the
    /// scheduling order instead of the scheduling order itself. Causality is
    /// preserved (an event scheduled by another still runs after it); only
    /// the order of *independent* same-time events changes.
    tiebreak_seed: Option<u64>,
    compact_min_tombstones: usize,
    /// Total number of events ever scheduled (for run reports).
    pub scheduled_total: u64,
    /// Side-map `seq → lane`, maintained only in exploration mode
    /// ([`EventQueue::record_lanes`]): the schedule-policy hook needs each
    /// pending event's tiebreak lane to build per-lane candidate fronts,
    /// and `Key` deliberately does not carry it. Empty (and untouched) in
    /// ordinary runs, so the hot push/pop paths pay nothing.
    lanes: Option<std::collections::HashMap<u64, Option<u64>>>,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::with_ladder(ladder_enabled())
    }
}

impl EventQueue {
    /// Construct with an explicit backend choice (tests, microbenchmark;
    /// ordinary kernels go through `default()` and the env toggle).
    pub fn with_ladder(ladder: bool) -> EventQueue {
        EventQueue {
            backend: if ladder {
                Backend::Ladder(LadderQueue::new())
            } else {
                Backend::Heap(BinaryHeap::new())
            },
            arena: EventArena::default(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            tiebreak_seed: None,
            compact_min_tombstones: COMPACT_MIN_TOMBSTONES,
            scheduled_total: 0,
            lanes: None,
        }
    }

    /// Start recording each event's tiebreak lane (exploration mode). Must
    /// be enabled before the first push so every pending event is covered.
    pub fn record_lanes(&mut self) {
        debug_assert_eq!(self.scheduled_total, 0, "record_lanes after pushes");
        self.lanes = Some(std::collections::HashMap::new());
    }

    /// The recorded lane of a pending event (exploration mode only).
    pub fn lane_of(&self, seq: u64) -> Option<u64> {
        self.lanes.as_ref().and_then(|m| m.get(&seq).copied())?
    }

    /// Perturb same-time event ordering with `seed` (race detection).
    pub fn set_tiebreak_seed(&mut self, seed: u64) {
        self.tiebreak_seed = Some(seed);
    }

    /// Override the compaction trigger (kernel microbenchmark knob; the
    /// default is [`COMPACT_MIN_TOMBSTONES`]).
    #[allow(dead_code)] // microbench / tests
    pub fn set_compact_min_tombstones(&mut self, n: usize) {
        self.compact_min_tombstones = n.max(1);
    }

    /// Schedule an event. `lane` groups events that race on shared state
    /// (e.g. everything targeting one process): same-time events in the same
    /// lane always pop in scheduling order, even under a perturbation seed,
    /// because their relative order is defined model semantics. Unkeyed
    /// (`None`) events are treated as independent and permute freely.
    pub fn push(&mut self, time: SimTime, lane: Option<u64>, kind: EventKind) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let tiekey = match self.tiebreak_seed {
            None => seq,
            // Same lane ⇒ same tiekey ⇒ the `seq` tiebreak preserves the
            // scheduling order; distinct lanes land in a seeded order.
            Some(seed) => splitmix64(seed ^ lane.unwrap_or(seq)),
        };
        if let Some(m) = self.lanes.as_mut() {
            m.insert(seq, lane);
        }
        let slot = self.arena.insert(kind);
        self.backend.push(Key {
            time_ns: time.as_nanos(),
            tiekey,
            seq,
            slot,
        });
        EventId(seq)
    }

    /// Mark an event cancelled; it is skipped when popped.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
        // Once tombstones rival live events, pops spend more time skipping
        // corpses than returning work and `len`/`is_empty` drift (a tombstone
        // for an already-popped event is never reclaimed). Rebuilding is
        // O(queue) but amortized: compaction empties the tombstone set, so it
        // takes as many fresh cancellations as there are live events before
        // it can trigger again.
        if self.cancelled.len() >= self.compact_min_tombstones
            && self.cancelled.len() * 2 >= self.backend.len()
        {
            self.compact();
        }
    }

    /// Drop every cancelled event from the backend and clear the tombstone
    /// set, reclaiming the corpses' arena slots.
    ///
    /// Tombstones that match nothing in the backend belong to events that
    /// were already executed; discarding them restores exact
    /// `len`/`is_empty` accounting.
    fn compact(&mut self) {
        let cancelled = std::mem::take(&mut self.cancelled);
        let mut keys = Vec::with_capacity(self.backend.len());
        self.backend.drain_into(&mut keys);
        keys.retain(|k| {
            if cancelled.contains(&k.seq) {
                self.arena.discard(k.slot);
                if let Some(m) = self.lanes.as_mut() {
                    m.remove(&k.seq);
                }
                false
            } else {
                true
            }
        });
        self.backend.rebuild(keys);
    }

    /// Forget a key's lane record (the event left the queue).
    fn forget_lane(&mut self, seq: u64) {
        if let Some(m) = self.lanes.as_mut() {
            m.remove(&seq);
        }
    }

    /// Reassemble the event at `k`, taking its payload out of the arena.
    fn assemble(&mut self, k: Key) -> Event {
        self.forget_lane(k.seq);
        Event {
            time: SimTime::from_nanos(k.time_ns),
            seq: k.seq,
            tiekey: k.tiekey,
            kind: self.arena.take(k.slot),
        }
    }

    /// Pop and reclaim the cancelled corpse at the queue head iff `k` is
    /// one. `true` means the caller must re-examine the new head.
    fn discard_if_corpse(&mut self, k: Key) -> bool {
        // A single hash probe: `remove` both tests and clears the tombstone.
        if self.cancelled.remove(&k.seq) {
            self.backend.pop();
            self.arena.discard(k.slot);
            self.forget_lane(k.seq);
            true
        } else {
            false
        }
    }

    pub fn pop(&mut self) -> Option<Event> {
        loop {
            let k = self.backend.pop()?;
            if self.cancelled.remove(&k.seq) {
                self.arena.discard(k.slot);
                self.forget_lane(k.seq);
                continue;
            }
            return Some(self.assemble(k));
        }
    }

    /// Pop the next event only if `want(time, kind)` accepts it. Cancelled
    /// corpses at the front are discarded either way (they would never
    /// execute), so a refusal means the live head of the queue does not
    /// match. Used by the kernel to coalesce consecutive same-time wakes for
    /// one process into a single token handoff.
    pub fn pop_if(&mut self, want: impl Fn(SimTime, &EventKind) -> bool) -> Option<Event> {
        loop {
            let k = self.backend.peek()?;
            if self.discard_if_corpse(k) {
                continue;
            }
            if !want(SimTime::from_nanos(k.time_ns), self.arena.get(k.slot)) {
                return None;
            }
            let k = self.backend.pop().expect("peeked event vanished");
            return Some(self.assemble(k));
        }
    }

    /// The time of the next live (non-cancelled) event, without consuming
    /// it. Corpses discovered at the head are reclaimed on the way.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let k = self.backend.peek()?;
            if self.discard_if_corpse(k) {
                continue;
            }
            return Some(SimTime::from_nanos(k.time_ns));
        }
    }

    /// Pop every live key at the earliest pending instant, in canonical
    /// pop order (exploration mode). The caller inspects them through
    /// [`EventQueue::peek_kind`], executes exactly one via
    /// [`EventQueue::take_key`], and pushes the rest back with
    /// [`EventQueue::unpop`] — which exercises the backends' push-below-
    /// current-minimum paths, so exploration doubles as a backend-order
    /// proof. Cancelled corpses encountered on the way are reclaimed.
    pub fn pop_ready_keys(&mut self) -> Vec<Key> {
        let mut out = Vec::new();
        let Some(t) = self.peek_time() else {
            return out;
        };
        let t = t.as_nanos();
        while let Some(k) = self.backend.peek() {
            if k.time_ns != t {
                break;
            }
            self.backend.pop();
            if self.cancelled.remove(&k.seq) {
                self.arena.discard(k.slot);
                self.forget_lane(k.seq);
                continue;
            }
            out.push(k);
        }
        out
    }

    /// Borrow the payload behind a popped-but-unconsumed key.
    pub fn peek_kind(&self, k: Key) -> &EventKind {
        self.arena.get(k.slot)
    }

    /// Consume a key popped by [`EventQueue::pop_ready_keys`].
    pub fn take_key(&mut self, k: Key) -> Event {
        self.assemble(k)
    }

    /// Drop a key popped by [`EventQueue::pop_ready_keys`] without running
    /// it (stale resumes for dead processes).
    pub fn discard_key(&mut self, k: Key) {
        self.arena.discard(k.slot);
        self.forget_lane(k.seq);
    }

    /// Return unconsumed ready keys to the backend.
    pub fn unpop(&mut self, keys: impl IntoIterator<Item = Key>) {
        for k in keys {
            self.backend.push(k);
        }
    }

    #[allow(dead_code)] // used by tests and future schedulers
    pub fn is_empty(&self) -> bool {
        // Cancelled-but-unpopped events don't count as pending work.
        self.backend.len() <= self.cancelled.len()
    }

    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.backend.len().saturating_sub(self.cancelled.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call() -> EventKind {
        EventKind::Call(Box::new(|_| {}))
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::default();
        q.push(SimTime::from_nanos(20), None, call());
        q.push(SimTime::from_nanos(10), None, call());
        q.push(SimTime::from_nanos(10), None, call());
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        let c = q.pop().unwrap();
        assert_eq!(a.time, SimTime::from_nanos(10));
        assert_eq!(b.time, SimTime::from_nanos(10));
        assert!(a.seq < b.seq, "same-time events pop in scheduling order");
        assert_eq!(c.time, SimTime::from_nanos(20));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::default();
        let id = q.push(SimTime::from_nanos(5), None, call());
        q.push(SimTime::from_nanos(6), None, call());
        q.cancel(id);
        assert_eq!(q.len(), 1);
        let ev = q.pop().unwrap();
        assert_eq!(ev.time, SimTime::from_nanos(6));
    }

    #[test]
    fn pop_if_refuses_nonmatching_head_and_skips_corpses() {
        let mut q = EventQueue::default();
        let a = q.push(SimTime::from_nanos(5), None, call());
        q.push(SimTime::from_nanos(5), None, call());
        q.push(SimTime::from_nanos(9), None, call());
        // Head does not match: nothing is consumed.
        assert!(q.pop_if(|t, _| t.as_nanos() == 9).is_none());
        assert_eq!(q.len(), 3);
        // Cancel the head; pop_if discards the corpse and matches the next.
        q.cancel(a);
        let ev = q.pop_if(|t, _| t.as_nanos() == 5).unwrap();
        assert_eq!(ev.seq, 1);
        assert!(q.pop_if(|t, _| t.as_nanos() == 5).is_none());
        assert_eq!(q.pop().unwrap().time.as_nanos(), 9);
        assert!(q.pop_if(|_, _| true).is_none());
    }

    #[test]
    fn peek_time_reports_the_live_head_without_consuming() {
        let mut q = EventQueue::default();
        assert_eq!(q.peek_time(), None);
        let a = q.push(SimTime::from_nanos(5), None, call());
        q.push(SimTime::from_nanos(8), None, call());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(5)));
        assert_eq!(q.len(), 2, "peek consumes nothing");
        q.cancel(a);
        // The corpse at the head is reclaimed on the way to the answer.
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(8)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().time.as_nanos(), 8);
    }

    #[test]
    fn empty_accounts_for_cancellations() {
        let mut q = EventQueue::default();
        let id = q.push(SimTime::from_nanos(5), None, call());
        assert!(!q.is_empty());
        q.cancel(id);
        assert!(q.is_empty());
    }

    #[test]
    fn compaction_drops_tombstones_and_keeps_len_exact() {
        let mut q = EventQueue::default();
        let ids: Vec<EventId> = (0..200)
            .map(|i| q.push(SimTime::from_nanos(i), None, call()))
            .collect();
        // Cancelling half the queue crosses both thresholds (>= 64 tombstones
        // and tombstones >= half the backend) exactly at the 100th cancel.
        for id in &ids[..100] {
            q.cancel(*id);
        }
        assert!(q.cancelled.is_empty(), "compaction should clear tombstones");
        assert_eq!(q.backend.len(), 100, "cancelled events physically removed");
        assert_eq!(q.arena.len(), 100, "corpse payloads reclaimed");
        // Below-threshold cancels stay lazy but len() remains exact.
        for id in &ids[100..150] {
            q.cancel(*id);
        }
        assert_eq!(q.cancelled.len(), 50);
        assert_eq!(q.len(), 50);
        // Survivors pop in order with no skipped corpses in between.
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|ev| ev.time.as_nanos())
            .collect();
        assert_eq!(times, (150u64..200).collect::<Vec<_>>());
        assert!(q.is_empty());
        assert_eq!(q.arena.len(), 0, "every payload taken or reclaimed");
    }

    #[test]
    fn compaction_threshold_is_configurable() {
        let mut q = EventQueue::default();
        q.set_compact_min_tombstones(2);
        let a = q.push(SimTime::from_nanos(1), None, call());
        let b = q.push(SimTime::from_nanos(2), None, call());
        q.push(SimTime::from_nanos(3), None, call());
        q.push(SimTime::from_nanos(4), None, call());
        q.cancel(a);
        assert_eq!(q.cancelled.len(), 1, "below the lowered threshold");
        q.cancel(b);
        assert!(q.cancelled.is_empty(), "2 tombstones vs 4 events compacts");
        assert_eq!(q.backend.len(), 2);
    }

    #[test]
    fn compaction_purges_stale_tombstones_from_executed_events() {
        let mut q = EventQueue::default();
        let stale: Vec<EventId> = (0..super::COMPACT_MIN_TOMBSTONES as u64)
            .map(|i| q.push(SimTime::from_nanos(i), None, call()))
            .collect();
        while q.pop().is_some() {}
        // Cancelling already-popped events leaves tombstones that match
        // nothing; without compaction they would make len() undercount the
        // live events pushed afterwards.
        for id in &stale {
            q.cancel(*id);
        }
        assert!(q.cancelled.is_empty(), "stale tombstones purged");
        for i in 0..10 {
            q.push(SimTime::from_nanos(1_000 + i), None, call());
        }
        assert_eq!(q.len(), 10);
        assert!(!q.is_empty());
    }

    #[test]
    fn tiebreak_seed_permutes_only_same_time_events() {
        let order_with = |seed: Option<u64>| {
            let mut q = EventQueue::default();
            if let Some(s) = seed {
                q.set_tiebreak_seed(s);
            }
            // Four events at t=10 (a permutable tie), one each at 5 and 20.
            for t in [10, 5, 10, 10, 20, 10] {
                q.push(SimTime::from_nanos(t), None, call());
            }
            std::iter::from_fn(|| q.pop())
                .map(|ev| (ev.time.as_nanos(), ev.seq))
                .collect::<Vec<_>>()
        };
        let baseline = order_with(None);
        // Time order always holds, and the unperturbed tie order is seq.
        let times: Vec<u64> = baseline.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, [5, 10, 10, 10, 10, 20]);
        assert_eq!(
            baseline.iter().map(|(_, s)| *s).collect::<Vec<_>>(),
            [1, 0, 2, 3, 5, 4]
        );
        // A seed keeps the time order but permutes within the t=10 bucket;
        // the same seed reproduces the same permutation.
        let perturbed = order_with(Some(7));
        assert_eq!(perturbed.iter().map(|(t, _)| *t).collect::<Vec<_>>(), times);
        assert_eq!(perturbed, order_with(Some(7)));
        let mid: std::collections::BTreeSet<u64> =
            perturbed[1..5].iter().map(|(_, s)| *s).collect();
        assert_eq!(mid, [0u64, 2, 3, 5].into_iter().collect());
    }

    #[test]
    fn same_lane_events_keep_scheduling_order_under_any_seed() {
        for seed in 0..32 {
            let mut q = EventQueue::default();
            q.set_tiebreak_seed(seed);
            // Two lanes interleaved at one instant: intra-lane order must
            // survive every seed, inter-lane order is fair game.
            let a0 = q.push(SimTime::from_nanos(10), Some(1), call()).0;
            let b0 = q.push(SimTime::from_nanos(10), Some(2), call()).0;
            let a1 = q.push(SimTime::from_nanos(10), Some(1), call()).0;
            let b1 = q.push(SimTime::from_nanos(10), Some(2), call()).0;
            let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|ev| ev.seq).collect();
            let pos = |s: u64| order.iter().position(|&x| x == s).unwrap();
            assert!(pos(a0) < pos(a1), "lane 1 order violated under seed {seed}");
            assert!(pos(b0) < pos(b1), "lane 2 order violated under seed {seed}");
        }
    }

    #[test]
    fn ready_keys_collect_the_tied_instant_and_unpop_restores_order() {
        for ladder in [false, true] {
            let mut q = EventQueue::with_ladder(ladder);
            q.record_lanes();
            let a = q.push(SimTime::from_nanos(10), Some(1), call());
            let b = q.push(SimTime::from_nanos(10), None, call());
            let c = q.push(SimTime::from_nanos(10), Some(1), call());
            let d = q.push(SimTime::from_nanos(20), Some(2), call());
            let corpse = q.push(SimTime::from_nanos(10), None, call());
            q.cancel(corpse);
            let ready = q.pop_ready_keys();
            assert_eq!(
                ready.iter().map(|k| k.seq).collect::<Vec<_>>(),
                [a.0, b.0, c.0],
                "ladder={ladder}: ready set is the live t=10 bucket in pop order"
            );
            assert_eq!(q.lane_of(a.0), Some(1));
            assert_eq!(q.lane_of(b.0), None);
            assert!(matches!(q.peek_kind(ready[0]), EventKind::Call(_)));
            // Execute the *middle* candidate, push the rest back: the
            // backend must accept keys at (or below) its drained minimum.
            let ev = q.take_key(ready[1]);
            assert_eq!(ev.seq, b.0);
            q.unpop([ready[0], ready[2]]);
            let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
            assert_eq!(order, [a.0, c.0, d.0], "unpopped keys keep their order");
            assert_eq!(q.lane_of(d.0), None, "consumed events forget lanes");
        }
    }

    #[test]
    fn discard_key_reclaims_without_running() {
        let mut q = EventQueue::default();
        q.record_lanes();
        q.push(SimTime::from_nanos(5), Some(3), call());
        let ready = q.pop_ready_keys();
        assert_eq!(ready.len(), 1);
        q.discard_key(ready[0]);
        assert_eq!(q.arena.len(), 0, "payload reclaimed");
        assert!(q.is_empty());
        assert_eq!(q.lane_of(ready[0].seq), None);
    }

    #[test]
    fn small_queues_skip_compaction() {
        let mut q = EventQueue::default();
        let id = q.push(SimTime::from_nanos(1), None, call());
        q.cancel(id);
        // Below the compaction threshold the tombstone stays; lazily skipped
        // on pop as before.
        assert_eq!(q.cancelled.len(), 1);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    /// Deterministic xorshift64* generator for the differential test (no
    /// external RNG crates in the offline build).
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 >> 12;
            self.0 ^= self.0 << 25;
            self.0 ^= self.0 >> 27;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    /// Drive both backends through one pseudo-random op and assert their
    /// answers match. Returns the advanced "now" floor after pops.
    fn differential_step(
        rng: &mut XorShift,
        now: &mut u64,
        live: &mut Vec<EventId>,
        heap: &mut EventQueue,
        ladder: &mut EventQueue,
    ) {
        let digest = |ev: &Event| (ev.time.as_nanos(), ev.seq, ev.tiekey);
        match rng.next() % 10 {
            // Pushes dominate, with a gap spectrum from exact ties to
            // far-future: the mix that exercises bottom, wheel and overflow.
            0..=4 => {
                let r = rng.next();
                let gap = match r % 16 {
                    0..=6 => 0,
                    7..=10 => r % 1_000,
                    11..=13 => r % 1_000_000,
                    _ => r % 2_000_000_000,
                };
                let lane = match rng.next() % 4 {
                    0 => None,
                    l => Some(l),
                };
                let t = SimTime::from_nanos(*now + gap);
                let a = heap.push(t, lane, call());
                let b = ladder.push(t, lane, call());
                assert_eq!(a, b, "backends must assign identical event ids");
                live.push(a);
            }
            // A same-instant burst across lanes: the marker-storm shape.
            5 => {
                let t = SimTime::from_nanos(*now + rng.next() % 50);
                for lane in 0..8u64 {
                    let a = heap.push(t, Some(lane), call());
                    let b = ladder.push(t, Some(lane), call());
                    assert_eq!(a, b);
                    live.push(a);
                }
            }
            6 | 7 => {
                let a = heap.pop();
                let b = ladder.pop();
                assert_eq!(
                    a.as_ref().map(&digest),
                    b.as_ref().map(&digest),
                    "pop sequences diverged"
                );
                if let Some(ev) = a {
                    *now = ev.time.as_nanos();
                }
            }
            8 => {
                // pop_if against the actual head time: taken on both or
                // refused on both.
                let t = heap.peek_time();
                assert_eq!(t, ladder.peek_time());
                let Some(t) = t else { return };
                let cut = t.as_nanos() + rng.next() % 2;
                let a = heap.pop_if(|et, _| et.as_nanos() <= cut);
                let b = ladder.pop_if(|et, _| et.as_nanos() <= cut);
                assert_eq!(a.as_ref().map(&digest), b.as_ref().map(&digest));
                if let Some(ev) = a {
                    *now = ev.time.as_nanos();
                }
            }
            _ => {
                if !live.is_empty() {
                    let id = live.swap_remove((rng.next() % live.len() as u64) as usize);
                    heap.cancel(id);
                    ladder.cancel(id);
                }
            }
        }
        assert_eq!(heap.len(), ladder.len(), "len accounting diverged");
    }

    #[test]
    fn ladder_and_heap_backends_pop_identically_over_1e5_mixed_ops() {
        for (seed, tiebreak) in [(0x5EED_0001u64, None), (0x5EED_0002, Some(42))] {
            let mut heap = EventQueue::with_ladder(false);
            let mut ladder = EventQueue::with_ladder(true);
            if let Some(s) = tiebreak {
                heap.set_tiebreak_seed(s);
                ladder.set_tiebreak_seed(s);
            }
            let mut rng = XorShift(seed);
            let mut now = 0u64;
            let mut live: Vec<EventId> = Vec::new();
            for _ in 0..100_000 {
                differential_step(&mut rng, &mut now, &mut live, &mut heap, &mut ladder);
            }
            // Drain the survivors: the tails must agree too.
            loop {
                let a = heap.pop();
                let b = ladder.pop();
                assert_eq!(
                    a.as_ref().map(|e| (e.time, e.seq, e.tiekey)),
                    b.as_ref().map(|e| (e.time, e.seq, e.tiekey))
                );
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
