//! The kernel event queue.
//!
//! Events are totally ordered by `(time, sequence)`. The sequence number is
//! assigned when the event is scheduled; because simulated execution is
//! sequential and cooperative, scheduling order — and therefore tie-breaking
//! among same-time events — is deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::kernel::SimCtx;
use crate::process::Pid;
use crate::time::SimTime;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u64);

pub(crate) enum EventKind {
    /// Run a model closure on the kernel loop.
    Call(Box<dyn FnOnce(&SimCtx) + Send>),
    /// Hand the execution token to a parked process.
    Resume(Pid, crate::process::WakeKind),
    /// Apply a scheduled network-fault transition (link down / degrade /
    /// restore, partition start / heal). Dispatched exactly like `Call`;
    /// kept as its own variant so the lane audit can prove that fault
    /// transitions — which race with every flow chunk touching the same
    /// link — are never scheduled laneless.
    LinkFault(Box<dyn FnOnce(&SimCtx) + Send>),
}

pub(crate) struct Event {
    pub time: SimTime,
    pub seq: u64,
    /// Secondary sort key among same-time events. Equal to `seq` in normal
    /// runs; a seeded permutation of it under tiebreak perturbation (the
    /// race detector's probe for schedule-sensitive model state).
    pub tiekey: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest
        // (time, tiekey, seq) pops first. `seq` keeps the order total even
        // if a perturbation seed produced colliding tiekeys.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.tiekey.cmp(&self.tiekey))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed bijection on `u64` used to
/// derive perturbed tiebreak keys from (seed, seq).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Tombstone count below which [`EventQueue::cancel`] never compacts; keeps
/// small queues (the common case: a handful of pending timers) from paying
/// rebuild costs for no win.
const COMPACT_MIN_TOMBSTONES: usize = 64;

/// Min-queue of pending events plus a tombstone set for cancellation.
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
    /// When set, same-time tiebreaks follow a seeded permutation of the
    /// scheduling order instead of the scheduling order itself. Causality is
    /// preserved (an event scheduled by another still runs after it); only
    /// the order of *independent* same-time events changes.
    tiebreak_seed: Option<u64>,
    /// Total number of events ever scheduled (for run reports).
    pub scheduled_total: u64,
}

impl EventQueue {
    /// Perturb same-time event ordering with `seed` (race detection).
    pub fn set_tiebreak_seed(&mut self, seed: u64) {
        self.tiebreak_seed = Some(seed);
    }

    /// Schedule an event. `lane` groups events that race on shared state
    /// (e.g. everything targeting one process): same-time events in the same
    /// lane always pop in scheduling order, even under a perturbation seed,
    /// because their relative order is defined model semantics. Unkeyed
    /// (`None`) events are treated as independent and permute freely.
    pub fn push(&mut self, time: SimTime, lane: Option<u64>, kind: EventKind) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let tiekey = match self.tiebreak_seed {
            None => seq,
            // Same lane ⇒ same tiekey ⇒ the `seq` tiebreak preserves the
            // scheduling order; distinct lanes land in a seeded order.
            Some(seed) => splitmix64(seed ^ lane.unwrap_or(seq)),
        };
        self.heap.push(Event {
            time,
            seq,
            tiekey,
            kind,
        });
        EventId(seq)
    }

    /// Mark an event cancelled; it is skipped when popped.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
        // Once tombstones rival live events, pops spend more time skipping
        // corpses than returning work and `len`/`is_empty` drift (a tombstone
        // for an already-popped event is never reclaimed). Rebuilding is
        // O(heap) but amortized: compaction empties the tombstone set, so it
        // takes as many fresh cancellations as there are live events before
        // it can trigger again.
        if self.cancelled.len() >= COMPACT_MIN_TOMBSTONES
            && self.cancelled.len() * 2 >= self.heap.len()
        {
            self.compact();
        }
    }

    /// Drop every cancelled event from the heap and clear the tombstone set.
    ///
    /// Tombstones that match nothing in the heap belong to events that were
    /// already executed; discarding them restores exact `len`/`is_empty`
    /// accounting.
    fn compact(&mut self) {
        let cancelled = std::mem::take(&mut self.cancelled);
        self.heap = std::mem::take(&mut self.heap)
            .into_vec()
            .into_iter()
            .filter(|ev| !cancelled.contains(&ev.seq))
            .collect();
    }

    pub fn pop(&mut self) -> Option<Event> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            return Some(ev);
        }
        None
    }

    /// Pop the next event only if `want` accepts it. Cancelled corpses at
    /// the front are discarded either way (they would never execute), so a
    /// refusal means the live head of the queue does not match. Used by the
    /// kernel to coalesce consecutive same-time wakes for one process into a
    /// single token handoff.
    pub fn pop_if(&mut self, want: impl Fn(&Event) -> bool) -> Option<Event> {
        loop {
            let head = self.heap.peek()?;
            if self.cancelled.contains(&head.seq) {
                let corpse = self.heap.pop().expect("peeked event vanished");
                self.cancelled.remove(&corpse.seq);
                continue;
            }
            if !want(head) {
                return None;
            }
            return self.heap.pop();
        }
    }

    #[allow(dead_code)] // used by tests and future schedulers
    pub fn is_empty(&self) -> bool {
        // Cancelled-but-unpopped events don't count as pending work.
        self.heap.len() <= self.cancelled.len()
    }

    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.heap.len().saturating_sub(self.cancelled.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call() -> EventKind {
        EventKind::Call(Box::new(|_| {}))
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::default();
        q.push(SimTime::from_nanos(20), None, call());
        q.push(SimTime::from_nanos(10), None, call());
        q.push(SimTime::from_nanos(10), None, call());
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        let c = q.pop().unwrap();
        assert_eq!(a.time, SimTime::from_nanos(10));
        assert_eq!(b.time, SimTime::from_nanos(10));
        assert!(a.seq < b.seq, "same-time events pop in scheduling order");
        assert_eq!(c.time, SimTime::from_nanos(20));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::default();
        let id = q.push(SimTime::from_nanos(5), None, call());
        q.push(SimTime::from_nanos(6), None, call());
        q.cancel(id);
        assert_eq!(q.len(), 1);
        let ev = q.pop().unwrap();
        assert_eq!(ev.time, SimTime::from_nanos(6));
    }

    #[test]
    fn pop_if_refuses_nonmatching_head_and_skips_corpses() {
        let mut q = EventQueue::default();
        let a = q.push(SimTime::from_nanos(5), None, call());
        q.push(SimTime::from_nanos(5), None, call());
        q.push(SimTime::from_nanos(9), None, call());
        // Head does not match: nothing is consumed.
        assert!(q.pop_if(|ev| ev.time.as_nanos() == 9).is_none());
        assert_eq!(q.len(), 3);
        // Cancel the head; pop_if discards the corpse and matches the next.
        q.cancel(a);
        let ev = q.pop_if(|ev| ev.time.as_nanos() == 5).unwrap();
        assert_eq!(ev.seq, 1);
        assert!(q.pop_if(|ev| ev.time.as_nanos() == 5).is_none());
        assert_eq!(q.pop().unwrap().time.as_nanos(), 9);
        assert!(q.pop_if(|_| true).is_none());
    }

    #[test]
    fn empty_accounts_for_cancellations() {
        let mut q = EventQueue::default();
        let id = q.push(SimTime::from_nanos(5), None, call());
        assert!(!q.is_empty());
        q.cancel(id);
        assert!(q.is_empty());
    }

    #[test]
    fn compaction_drops_tombstones_and_keeps_len_exact() {
        let mut q = EventQueue::default();
        let ids: Vec<EventId> = (0..200)
            .map(|i| q.push(SimTime::from_nanos(i), None, call()))
            .collect();
        // Cancelling half the queue crosses both thresholds (>= 64 tombstones
        // and tombstones >= half the heap) exactly at the 100th cancel.
        for id in &ids[..100] {
            q.cancel(*id);
        }
        assert!(q.cancelled.is_empty(), "compaction should clear tombstones");
        assert_eq!(q.heap.len(), 100, "cancelled events physically removed");
        // Below-threshold cancels stay lazy but len() remains exact.
        for id in &ids[100..150] {
            q.cancel(*id);
        }
        assert_eq!(q.cancelled.len(), 50);
        assert_eq!(q.len(), 50);
        // Survivors pop in order with no skipped corpses in between.
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|ev| ev.time.as_nanos())
            .collect();
        assert_eq!(times, (150u64..200).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn compaction_purges_stale_tombstones_from_executed_events() {
        let mut q = EventQueue::default();
        let stale: Vec<EventId> = (0..super::COMPACT_MIN_TOMBSTONES as u64)
            .map(|i| q.push(SimTime::from_nanos(i), None, call()))
            .collect();
        while q.pop().is_some() {}
        // Cancelling already-popped events leaves tombstones that match
        // nothing; without compaction they would make len() undercount the
        // live events pushed afterwards.
        for id in &stale {
            q.cancel(*id);
        }
        assert!(q.cancelled.is_empty(), "stale tombstones purged");
        for i in 0..10 {
            q.push(SimTime::from_nanos(1_000 + i), None, call());
        }
        assert_eq!(q.len(), 10);
        assert!(!q.is_empty());
    }

    #[test]
    fn tiebreak_seed_permutes_only_same_time_events() {
        let order_with = |seed: Option<u64>| {
            let mut q = EventQueue::default();
            if let Some(s) = seed {
                q.set_tiebreak_seed(s);
            }
            // Four events at t=10 (a permutable tie), one each at 5 and 20.
            for t in [10, 5, 10, 10, 20, 10] {
                q.push(SimTime::from_nanos(t), None, call());
            }
            std::iter::from_fn(|| q.pop())
                .map(|ev| (ev.time.as_nanos(), ev.seq))
                .collect::<Vec<_>>()
        };
        let baseline = order_with(None);
        // Time order always holds, and the unperturbed tie order is seq.
        let times: Vec<u64> = baseline.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, [5, 10, 10, 10, 10, 20]);
        assert_eq!(
            baseline.iter().map(|(_, s)| *s).collect::<Vec<_>>(),
            [1, 0, 2, 3, 5, 4]
        );
        // A seed keeps the time order but permutes within the t=10 bucket;
        // the same seed reproduces the same permutation.
        let perturbed = order_with(Some(7));
        assert_eq!(perturbed.iter().map(|(t, _)| *t).collect::<Vec<_>>(), times);
        assert_eq!(perturbed, order_with(Some(7)));
        let mid: std::collections::BTreeSet<u64> =
            perturbed[1..5].iter().map(|(_, s)| *s).collect();
        assert_eq!(mid, [0u64, 2, 3, 5].into_iter().collect());
    }

    #[test]
    fn same_lane_events_keep_scheduling_order_under_any_seed() {
        for seed in 0..32 {
            let mut q = EventQueue::default();
            q.set_tiebreak_seed(seed);
            // Two lanes interleaved at one instant: intra-lane order must
            // survive every seed, inter-lane order is fair game.
            let a0 = q.push(SimTime::from_nanos(10), Some(1), call()).0;
            let b0 = q.push(SimTime::from_nanos(10), Some(2), call()).0;
            let a1 = q.push(SimTime::from_nanos(10), Some(1), call()).0;
            let b1 = q.push(SimTime::from_nanos(10), Some(2), call()).0;
            let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|ev| ev.seq).collect();
            let pos = |s: u64| order.iter().position(|&x| x == s).unwrap();
            assert!(pos(a0) < pos(a1), "lane 1 order violated under seed {seed}");
            assert!(pos(b0) < pos(b1), "lane 2 order violated under seed {seed}");
        }
    }

    #[test]
    fn small_queues_skip_compaction() {
        let mut q = EventQueue::default();
        let id = q.push(SimTime::from_nanos(1), None, call());
        q.cancel(id);
        // Below COMPACT_MIN_TOMBSTONES the tombstone stays; lazily skipped on
        // pop as before.
        assert_eq!(q.cancelled.len(), 1);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
