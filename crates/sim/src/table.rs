//! Dense process table.
//!
//! [`Pid`]s are sequential `u64`s allocated by the kernel and never reused,
//! so the table is a plain `Vec` indexed by pid: O(1) lookup with no
//! hashing on the kernel hot path (every resume, kill and exec does at
//! least one lookup). Entries are never removed — a dead process keeps its
//! slot (marked dead by the kernel) so stale pids still resolve and report
//! not-alive instead of aliasing a later process.

use crate::process::Pid;

/// Vec-backed map from [`Pid`] to `T` for densely allocated pids.
///
/// `Option` slots tolerate out-of-order inserts (a pid is allocated before
/// its entry is constructed, so a lower pid's insert can theoretically land
/// after a higher pid's) and make lookups of not-yet-inserted pids return
/// `None` just like a map.
#[derive(Debug)]
pub(crate) struct ProcTable<T> {
    entries: Vec<Option<T>>,
}

impl<T> Default for ProcTable<T> {
    fn default() -> Self {
        ProcTable {
            entries: Vec::new(),
        }
    }
}

impl<T> ProcTable<T> {
    /// Insert the entry for `pid`, growing the table as needed.
    pub fn insert(&mut self, pid: Pid, entry: T) {
        let i = pid.0 as usize;
        if i >= self.entries.len() {
            self.entries.resize_with(i + 1, || None);
        }
        debug_assert!(self.entries[i].is_none(), "pid {pid} inserted twice");
        self.entries[i] = Some(entry);
    }

    pub fn get(&self, pid: Pid) -> Option<&T> {
        self.entries.get(pid.0 as usize)?.as_ref()
    }

    pub fn get_mut(&mut self, pid: Pid) -> Option<&mut T> {
        self.entries.get_mut(pid.0 as usize)?.as_mut()
    }

    /// All inserted entries with their pids, in pid order.
    pub fn iter(&self) -> impl Iterator<Item = (Pid, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (Pid(i as u64), e)))
    }

    /// All inserted entries, in pid order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.entries.iter().filter_map(|e| e.as_ref())
    }

    /// Mutable access to all inserted entries, in pid order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.entries.iter_mut().filter_map(|e| e.as_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_before_insert_is_none() {
        let t: ProcTable<&str> = ProcTable::default();
        assert!(t.get(Pid(0)).is_none());
        assert!(t.get(Pid(17)).is_none());
    }

    #[test]
    fn insert_and_lookup_round_trip() {
        let mut t = ProcTable::default();
        t.insert(Pid(0), "a");
        t.insert(Pid(1), "b");
        assert_eq!(t.get(Pid(0)), Some(&"a"));
        assert_eq!(t.get(Pid(1)), Some(&"b"));
        assert!(t.get(Pid(2)).is_none());
        *t.get_mut(Pid(1)).unwrap() = "b2";
        assert_eq!(t.get(Pid(1)), Some(&"b2"));
    }

    #[test]
    fn out_of_order_insert_leaves_holes_as_none() {
        let mut t = ProcTable::default();
        t.insert(Pid(5), "later");
        assert!(t.get(Pid(3)).is_none());
        assert_eq!(t.get(Pid(5)), Some(&"later"));
        t.insert(Pid(3), "backfill");
        assert_eq!(t.get(Pid(3)), Some(&"backfill"));
        assert_eq!(t.iter().count(), 2);
    }

    #[test]
    fn iter_yields_pid_order() {
        let mut t = ProcTable::default();
        for i in [2u64, 0, 1] {
            t.insert(Pid(i), i);
        }
        let pids: Vec<u64> = t.iter().map(|(p, _)| p.0).collect();
        assert_eq!(pids, vec![0, 1, 2]);
        for v in t.values_mut() {
            *v += 10;
        }
        assert_eq!(t.get(Pid(2)), Some(&12));
    }
}
