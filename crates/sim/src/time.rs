//! Virtual time types.
//!
//! Virtual time is a `u64` count of nanoseconds since the start of the
//! simulation — enough for ~584 simulated years, far beyond any experiment in
//! this workspace. Durations are a separate type so that adding two absolute
//! times is a compile error.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the virtual clock (nanoseconds since start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Convert to (lossy) floating-point seconds — for reporting only.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`; saturates at zero if `earlier` is
    /// actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference, `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from floating-point seconds (rounds to nanoseconds;
    /// negative and non-finite inputs clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Convert to (lossy) floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// `true` if this is the empty span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The time a transfer of `bytes` takes at `bytes_per_sec` throughput.
    ///
    /// A zero or non-finite rate yields `ZERO` (infinitely fast resources are
    /// how models disable a stage of a path).
    pub fn for_transfer(bytes: u64, bytes_per_sec: f64) -> SimDuration {
        if bytes == 0 || bytes_per_sec.is_nan() || bytes_per_sec <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 / bytes_per_sec)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs > self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(d.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k.max(1))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_nanos(100);
        let t2 = t + SimDuration::from_nanos(50);
        assert_eq!(t2.as_nanos(), 150);
        assert_eq!(t2 - t, SimDuration::from_nanos(50));
        assert_eq!(t.saturating_since(t2), SimDuration::ZERO);
        assert_eq!(t2.checked_since(t), Some(SimDuration::from_nanos(50)));
        assert_eq!(t.checked_since(t2), None);
    }

    #[test]
    fn transfer_time() {
        // 1000 bytes at 1000 B/s = 1 second.
        assert_eq!(
            SimDuration::for_transfer(1000, 1000.0),
            SimDuration::from_secs(1)
        );
        // Infinitely fast resource.
        assert_eq!(SimDuration::for_transfer(1000, 0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::for_transfer(0, 100.0), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 2, SimDuration::from_secs(5));
        assert_eq!(d / 0, d); // divide-by-zero guards to identity
    }

    #[test]
    fn saturation_at_extremes() {
        let big = SimDuration::from_nanos(u64::MAX);
        assert_eq!(big + big, big);
        assert_eq!(SimTime::MAX + big, SimTime::MAX);
    }
}
