//! Calendar/ladder queue: the event queue's O(1) backend for dense-time
//! traffic.
//!
//! Three rungs, nearest first:
//!
//! * **bottom** — a sorted `Vec<Key>` with a head cursor. Holds every
//!   pending key with time below `drained_until`. Pop is a cursor bump;
//!   a push at or after the current tail (the overwhelmingly common case:
//!   same-instant events appended in `seq` order) is a `Vec::push`.
//! * **wheel** — [`WHEEL_BUCKETS`] unsorted buckets of `width` nanoseconds
//!   each, covering `[wheel_start, wheel_start + WHEEL_BUCKETS·width)`.
//!   A push in range is an O(1) append to its bucket; when the bottom
//!   drains, the next non-empty bucket is sorted and *spilled* into it.
//! * **overflow** — an unsorted `Vec` for keys beyond the wheel. When both
//!   lower rungs drain, the wheel re-anchors at the overflow minimum and
//!   redistributes what now fits.
//!
//! A bucket about to spill more than [`SPLIT_SPILL`] events is **split**
//! instead: the wheel re-anchors at the bucket with a 256× narrower width
//! (the ladder's "next rung down"), so the sorted bottom — and the cost of
//! the O(len) inserts that pushes into the already-drained past pay — stays
//! bounded no matter how densely events cluster.
//!
//! The bucket `width` also adapts to observed event-time density, but
//! **only at re-anchor or split time** and only from what was already
//! pushed — a deterministic function of the event sequence, never of
//! wall-clock or memory state, so replays stay bit-identical.
//!
//! Ordering is total on [`Key`] `(time, tiekey, seq)` — identical to the
//! heap backend, which is what the differential test in `event.rs` pins.

/// Number of wheel buckets. Power of two, sized so the wheel covers a few
/// thousand "typical gaps" between re-anchors without the array itself
/// becoming a cache burden.
pub(crate) const WHEEL_BUCKETS: usize = 256;

/// Bucket width the queue starts with (1 µs) — microsecond-scale gaps are
/// the NIC/latency granularity of the network model. Re-anchoring adapts it.
const INITIAL_WIDTH_NS: u64 = 1_000;

/// Widest allowed bucket (keeps `WHEEL_BUCKETS · width` far from overflow).
const MAX_WIDTH_NS: u64 = 1 << 48;

/// Spilled buckets averaging more events than this halve the width.
const DENSE_PER_BUCKET: u64 = 16;

/// Spilled buckets averaging fewer events than this double the width.
const SPARSE_PER_BUCKET: u64 = 2;

/// A bucket about to spill more events than this is *split* instead: the
/// wheel re-anchors at the bucket with a 256× narrower width (recursively,
/// down to 1 ns). Splitting bounds the bottom rung — and with it the cost
/// of the sorted inserts near-past pushes pay — regardless of how many
/// events pile into one bucket. Without it, a steady near-time workload
/// (thousands of events within a microsecond, the chunked-flow shape)
/// degenerates: one spill dumps the whole population into the bottom and
/// every subsequent push becomes an O(n) memmove.
const SPLIT_SPILL: usize = 64;

/// Scheduling key: the total event order `(time, tiekey, seq)` plus the
/// arena slot of the payload. Sorting moves only this 32-byte `Copy` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Key {
    pub time_ns: u64,
    pub tiekey: u64,
    pub seq: u64,
    pub slot: u32,
}

pub(crate) struct LadderQueue {
    /// Sorted ascending; `bottom[head..]` are pending. Every key here is
    /// strictly below `drained_until`.
    bottom: Vec<Key>,
    head: usize,
    wheel: Vec<Vec<Key>>,
    wheel_start: u64,
    width: u64,
    /// Next wheel bucket to spill; buckets below `cur` are empty.
    cur: usize,
    /// Times strictly below this belong to the bottom rung.
    drained_until: u64,
    /// Unsorted keys beyond the wheel span.
    overflow: Vec<Key>,
    len: usize,
    /// Sweep statistics since the last re-anchor (width adaptation input).
    spilled_events: u64,
    spilled_buckets: u64,
    /// Scratch vector recycled across re-anchors.
    scratch: Vec<Key>,
}

impl LadderQueue {
    pub fn new() -> LadderQueue {
        LadderQueue::with_width(INITIAL_WIDTH_NS)
    }

    fn with_width(width: u64) -> LadderQueue {
        LadderQueue {
            bottom: Vec::new(),
            head: 0,
            wheel: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            wheel_start: 0,
            width: width.clamp(1, MAX_WIDTH_NS),
            cur: 0,
            drained_until: 0,
            overflow: Vec::new(),
            len: 0,
            spilled_events: 0,
            spilled_buckets: 0,
            scratch: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn push(&mut self, k: Key) {
        self.len += 1;
        if k.time_ns < self.drained_until {
            // Below the drain point: the key must enter the sorted bottom.
            // Appending covers the dense same-time case (new events carry
            // fresh `seq`s, sorting at or after the current tail); anything
            // else binary-searches into the live suffix.
            if self.bottom.last().is_none_or(|tail| *tail <= k) {
                self.bottom.push(k);
            } else {
                let at = match self.bottom[self.head..].binary_search(&k) {
                    Ok(i) | Err(i) => self.head + i,
                };
                self.bottom.insert(at, k);
            }
            return;
        }
        let idx = (k.time_ns - self.wheel_start) / self.width;
        if idx < WHEEL_BUCKETS as u64 {
            self.wheel[idx as usize].push(k);
        } else {
            self.overflow.push(k);
        }
    }

    pub fn peek(&mut self) -> Option<Key> {
        if self.ensure_head() {
            Some(self.bottom[self.head])
        } else {
            None
        }
    }

    pub fn pop(&mut self) -> Option<Key> {
        if !self.ensure_head() {
            return None;
        }
        let k = self.bottom[self.head];
        self.head += 1;
        self.len -= 1;
        // Reclaim the consumed prefix once it dominates the vector, so a
        // long run through one spilled bucket doesn't pin its memory.
        if self.head >= 64 && self.head * 2 >= self.bottom.len() {
            self.bottom.drain(..self.head);
            self.head = 0;
        }
        Some(k)
    }

    /// Make `bottom[head]` the queue minimum, spilling wheel buckets and
    /// re-anchoring from the overflow as needed. `false` iff empty.
    fn ensure_head(&mut self) -> bool {
        loop {
            if self.head < self.bottom.len() {
                return true;
            }
            self.bottom.clear();
            self.head = 0;
            // Spill the next non-empty wheel bucket into the bottom.
            while self.cur < WHEEL_BUCKETS {
                if self.wheel[self.cur].is_empty() {
                    self.cur += 1;
                    self.drained_until = self
                        .wheel_start
                        .saturating_add(self.cur as u64 * self.width);
                    continue;
                }
                if self.width > 1
                    && self.wheel[self.cur].len() > SPLIT_SPILL
                    && self.split_current()
                {
                    // Re-anchored narrower over the dense bucket: rescan
                    // from the new wheel's first bucket.
                    continue;
                }
                let bucket = &mut self.wheel[self.cur];
                self.cur += 1;
                self.drained_until = self
                    .wheel_start
                    .saturating_add(self.cur as u64 * self.width);
                self.spilled_events += bucket.len() as u64;
                self.spilled_buckets += 1;
                // The bucket keeps its capacity inside the wheel — spilled
                // storage is recycled on the next lap.
                self.bottom.append(bucket);
                self.bottom.sort_unstable();
                return true;
            }
            if self.overflow.is_empty() {
                return false;
            }
            self.reanchor();
        }
    }

    /// Re-anchor the wheel *at the current dense bucket* with a 256×
    /// narrower width, redistributing its keys over the new span; later
    /// buckets (now beyond the span) move to the overflow. Returns `false`
    /// when every key in the bucket sits at one instant — no width can
    /// separate them, and a same-instant spill is cheap anyway (new pushes
    /// at that instant carry fresh `seq`s and append at the bottom's tail).
    fn split_current(&mut self) -> bool {
        let bucket = &self.wheel[self.cur];
        let min_t = bucket.iter().map(|k| k.time_ns).min();
        let max_t = bucket.iter().map(|k| k.time_ns).max();
        if min_t == max_t {
            return false;
        }
        let start = self.wheel_start + self.cur as u64 * self.width;
        // ceil: the new span must still cover the whole old bucket. The
        // slack this adds means the new span can reach slightly *past* the
        // old bucket, so keys from later buckets (and even the overflow)
        // may belong on either side of the new wheel/overflow boundary —
        // every key at or above the split point is re-placed under the new
        // anchor to keep the rung invariants exact. Later rungs are near
        // empty in the dense steady state that triggers splits, so this
        // stays O(bucket).
        let new_width = self.width.div_ceil(WHEEL_BUCKETS as u64).max(1);
        let mut pending = std::mem::take(&mut self.scratch);
        pending.clear();
        for b in &mut self.wheel[self.cur..] {
            pending.append(b);
        }
        pending.append(&mut self.overflow);
        self.wheel_start = start;
        self.width = new_width;
        self.cur = 0;
        self.drained_until = start;
        for k in pending.drain(..) {
            let idx = (k.time_ns - start) / new_width;
            if idx < WHEEL_BUCKETS as u64 {
                self.wheel[idx as usize].push(k);
            } else {
                self.overflow.push(k);
            }
        }
        self.scratch = pending;
        true
    }

    /// Re-anchor the wheel at the overflow minimum, redistributing every
    /// key that now fits, and adapt the bucket width from the sweep
    /// statistics of the finished lap.
    fn reanchor(&mut self) {
        if let Some(per_bucket) = self.spilled_events.checked_div(self.spilled_buckets) {
            if per_bucket > DENSE_PER_BUCKET {
                self.width = (self.width / 2).max(1);
            } else if per_bucket < SPARSE_PER_BUCKET {
                self.width = self.width.saturating_mul(2).min(MAX_WIDTH_NS);
            }
        }
        self.spilled_events = 0;
        self.spilled_buckets = 0;
        let min_t = self
            .overflow
            .iter()
            .map(|k| k.time_ns)
            .min()
            .expect("reanchor on empty overflow");
        self.wheel_start = min_t;
        self.drained_until = min_t;
        self.cur = 0;
        let mut pending = std::mem::take(&mut self.overflow);
        self.scratch.clear();
        for k in pending.drain(..) {
            let idx = (k.time_ns - self.wheel_start) / self.width;
            if idx < WHEEL_BUCKETS as u64 {
                self.wheel[idx as usize].push(k);
            } else {
                self.scratch.push(k);
            }
        }
        std::mem::swap(&mut self.overflow, &mut self.scratch);
        self.scratch = pending; // recycle the drained vector's capacity
    }

    /// Move every pending key into `out` (compaction support). The queue is
    /// left empty but keeps its anchor and learned width.
    pub fn drain_into(&mut self, out: &mut Vec<Key>) {
        out.extend_from_slice(&self.bottom[self.head..]);
        self.bottom.clear();
        self.head = 0;
        for bucket in &mut self.wheel[self.cur..] {
            out.append(bucket);
        }
        out.append(&mut self.overflow);
        self.len = 0;
    }

    /// Rebuild from a key set (compaction support), keeping learned width.
    pub fn rebuild(&mut self, keys: Vec<Key>) {
        debug_assert_eq!(self.len, 0, "rebuild on a non-empty ladder");
        for k in keys {
            self.push(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(time_ns: u64, seq: u64) -> Key {
        Key {
            time_ns,
            tiekey: seq,
            seq,
            slot: seq as u32,
        }
    }

    fn drain(q: &mut LadderQueue) -> Vec<u64> {
        std::iter::from_fn(|| q.pop()).map(|k| k.seq).collect()
    }

    #[test]
    fn pops_in_total_key_order() {
        let mut q = LadderQueue::new();
        // Mixed placement: same-time burst (bottom/bucket 0), near-future
        // (wheel), and far-future (overflow, forcing a re-anchor).
        let times = [5u64, 5, 5, 900, 2_500, 40_000_000, 40_000_000, 7];
        for (seq, t) in times.iter().enumerate() {
            q.push(key(*t, seq as u64));
        }
        assert_eq!(q.len(), times.len());
        assert_eq!(drain(&mut q), vec![0, 1, 2, 7, 3, 4, 5, 6]);
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn pushes_below_the_drain_point_sort_into_the_bottom() {
        let mut q = LadderQueue::new();
        q.push(key(10, 0));
        q.push(key(500, 1));
        assert_eq!(q.pop().unwrap().seq, 0); // spills bucket 0, drained past 500
                                             // Same-instant follow-ups (the dense hot path) append; an earlier
                                             // time lands before the pending tail.
        q.push(key(500, 2));
        q.push(key(500, 3));
        q.push(key(20, 4));
        assert_eq!(drain(&mut q), vec![4, 1, 2, 3]);
    }

    #[test]
    fn reanchor_handles_wide_and_extreme_times() {
        let mut q = LadderQueue::new();
        q.push(key(u64::MAX, 0));
        q.push(key(1 << 50, 1));
        q.push(key(3, 2));
        assert_eq!(drain(&mut q), vec![2, 1, 0]);
    }

    #[test]
    fn interleaved_push_pop_keeps_order_against_a_model_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut q = LadderQueue::new();
        let mut model: BinaryHeap<Reverse<Key>> = BinaryHeap::new();
        // Deterministic pseudo-random mix (xorshift64*), biased to pushes.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut step = || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        };
        let mut now = 0u64;
        for seq in 0..20_000u64 {
            let r = step();
            if r % 4 != 0 {
                // Push at now + a spread of gaps: 0 (ties), ns, µs, ms.
                let gap = match r % 16 {
                    0..=7 => 0,
                    8..=11 => r % 1_000,
                    12..=14 => r % 1_000_000,
                    _ => r % 1_000_000_000,
                };
                let k = key(now + gap, seq);
                q.push(k);
                model.push(Reverse(k));
            } else {
                let got = q.pop();
                let want = model.pop().map(|Reverse(k)| k);
                assert_eq!(got, want);
                if let Some(k) = got {
                    now = k.time_ns;
                }
            }
            assert_eq!(q.len(), model.len());
        }
        while let Some(Reverse(want)) = model.pop() {
            assert_eq!(q.pop(), Some(want));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn dense_buckets_split_instead_of_flooding_the_bottom() {
        // The near-time steady state that motivates splitting: thousands of
        // events inside one initial-width bucket, popped and replenished at
        // the head. Correctness: order must match the model heap exactly.
        // (Performance is pinned by the kernel microbench, not here.)
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut q = LadderQueue::new();
        let mut model: BinaryHeap<Reverse<Key>> = BinaryHeap::new();
        let mut x = 0xdeadbeefcafef00du64;
        let mut step = || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        };
        let mut now = 0u64;
        let mut seq = 0u64;
        // Prefill: 4000 events within one 1 µs bucket.
        for _ in 0..4_000 {
            let k = key(now + step() % 1_000, seq);
            seq += 1;
            q.push(k);
            model.push(Reverse(k));
        }
        // Steady near-time churn across the split-up wheel, with an
        // occasional far-future key so splits must keep the wheel/overflow
        // boundary exact.
        for _ in 0..8_000 {
            let r = step();
            let gap = if r % 32 == 0 {
                r % 1_000_000
            } else {
                r % 1_000
            };
            let k = key(now + gap, seq);
            seq += 1;
            q.push(k);
            model.push(Reverse(k));
            let got = q.pop();
            let want = model.pop().map(|Reverse(k)| k);
            assert_eq!(got, want);
            now = got.unwrap().time_ns;
        }
        while let Some(Reverse(want)) = model.pop() {
            assert_eq!(q.pop(), Some(want));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn drain_and_rebuild_round_trip() {
        let mut q = LadderQueue::new();
        for seq in 0..100u64 {
            q.push(key(seq * 37 % 1_000_000, seq));
        }
        let _ = q.pop();
        let mut keys = Vec::new();
        q.drain_into(&mut keys);
        assert_eq!(keys.len(), 99);
        assert_eq!(q.len(), 0);
        keys.retain(|k| k.seq % 2 == 0);
        let expect = keys.len();
        q.rebuild(keys);
        assert_eq!(q.len(), expect);
        let mut last = None;
        while let Some(k) = q.pop() {
            assert!(last.is_none_or(|l| l <= k), "order after rebuild");
            last = Some(k);
        }
    }
}
