//! The simulation kernel: event loop, process table, and the [`SimCtx`]
//! service handle exposed to model code.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::event::{Event, EventId, EventKind, EventQueue};
use crate::pool::{self, LeaseGroup};
use crate::process::{
    Driver, Handoff, Pid, ProcCtx, ProcessExit, ResumeOutcome, WakeKind, WakeSlot,
};
use crate::schedule::{Candidate, CandidateKind, Decision, SchedulePolicy, StepRecord};
use crate::table::ProcTable;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceKind, Tracer};
use crate::wakes::WakeBatch;
use crate::KilledSignal;

/// A process body compiled to a resumable state machine, owned by the kernel
/// and stepped inline from the drive loop.
type CoroFuture = Pin<Box<dyn Future<Output = ()> + Send>>;
/// Deferred coroutine constructor: runs at the first Normal wake so the
/// process's local clock starts at its actual start time (the coroutine
/// analogue of the threaded backend's `wait_first_wake`).
type EmbryoFn = Box<dyn FnOnce(ProcCtx) -> CoroFuture + Send>;

/// Execution state of one simulated process.
enum ProcBody {
    /// Coroutine backend, not yet started: the constructor runs at the
    /// first Normal wake (a first wake of Killed drops it unstarted).
    Embryo(EmbryoFn),
    /// Coroutine backend, parked between wakes: the kernel deposits the
    /// next wake in `slot` and polls `fut` inline — a Resume event is a
    /// direct method call, no thread, no Condvar round-trip.
    Coro {
        fut: CoroFuture,
        slot: Arc<WakeSlot>,
    },
    /// Checked out by the drive loop for a poll. The machine cannot stay in
    /// the table while polled: polling reenters the kernel state lock
    /// through `schedule_exec`.
    Running,
    /// Threaded backend (`FTMPI_THREADED=1`): the token-handoff rendezvous,
    /// plus the join handle of a dedicated (`FTMPI_NO_POOL`) thread; pooled
    /// workers are never joined — teardown quiesces the lease group instead.
    Threaded {
        handoff: Arc<Handoff>,
        join: Option<JoinHandle<()>>,
    },
    /// Exited; nothing left to drive.
    Gone,
}

struct ProcEntry {
    name: Arc<str>,
    body: ProcBody,
    alive: bool,
    /// The event scheduled by the process's current `exec` call, if any.
    /// Cancelled when the process dies so a dead process's pending request
    /// neither mutates model state nor advances the clock.
    pending_exec: Option<EventId>,
}

pub(crate) struct KernelState {
    queue: EventQueue,
    now: SimTime,
    /// Dense pid-indexed table: pids are sequential and never reused, so
    /// the kernel hot path (resume/kill/exec) avoids hashing entirely.
    procs: ProcTable<ProcEntry>,
    next_pid: u64,
    /// `true`: spawn processes on the legacy OS-thread backend
    /// (`FTMPI_THREADED` / [`Sim::force_threaded`]). `false` (default):
    /// processes are kernel-driven stackless coroutines.
    threaded: bool,
    stop_requested: bool,
    executed: u64,
    max_events: Option<u64>,
    max_time: Option<SimTime>,
    tracer: Tracer,
    /// Exit records in completion order.
    exits: Vec<(Pid, Arc<str>, ProcessExit)>,
    /// Condvar round-trips avoided by delivering same-time wake batches in
    /// one token handoff (reported in [`RunReport::handoffs_saved`]).
    handoffs_saved: u64,
    /// Exploration mode: a controller choosing among same-instant
    /// candidates ([`Sim::set_schedule_policy`]). `None` in ordinary runs —
    /// the pop path is then exactly the policy-free fast path.
    policy: Option<Box<dyn SchedulePolicy>>,
    /// Multi-candidate instants recorded in exploration mode.
    decisions: Vec<Decision>,
    /// One record per executed event in exploration mode (effect windows
    /// into the trace).
    steps: Vec<StepRecord>,
}

/// Outcome of one exploration-mode pop attempt.
enum PolicyPop {
    /// The queue is empty (deadlock check decides success).
    Drained,
    /// The next instant lies past `max_time`; stop was requested.
    Horizon,
    /// Everything at the earliest instant was stale; look again.
    Retry,
    /// The policy's pick, removed from the queue and ready to dispatch.
    Run(Event),
}

impl KernelState {
    /// The exploration-mode pop: gather every live event at the earliest
    /// instant, offer the per-lane fronts (plus all laneless events) to the
    /// policy, execute its pick, and return the rest to the queue. Records
    /// a [`Decision`] for every real choice point and a [`StepRecord`] for
    /// every executed event.
    fn pop_with_policy(&mut self) -> PolicyPop {
        let Some(t) = self.queue.peek_time() else {
            return PolicyPop::Drained;
        };
        if self.max_time.map(|mt| t > mt).unwrap_or(false) {
            // Past the horizon: stop without consuming anything, same
            // outcome as the policy-free loop (the clock never advances
            // beyond max_time).
            self.stop_requested = true;
            return PolicyPop::Horizon;
        }
        let mut keys = self.queue.pop_ready_keys();
        // Resumes aimed at dead processes are stale: reclaim them before
        // building candidates, so the policy is never offered an event the
        // policy-free loop would silently drop.
        keys.retain(|&k| {
            let stale = matches!(
                self.queue.peek_kind(k),
                &EventKind::Resume(pid, _)
                    if !self.procs.get(pid).map(|e| e.alive).unwrap_or(false)
            );
            if stale {
                self.queue.discard_key(k);
            }
            !stale
        });
        if keys.is_empty() {
            return PolicyPop::Retry;
        }
        // Candidates: the front event of each tiebreak lane (later same-lane
        // events are blocked behind it — intra-lane order is model
        // semantics) plus every laneless event (freely permutable).
        let mut seen_lanes = std::collections::HashSet::new();
        let mut candidates = Vec::new();
        let mut candidate_keys = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            let lane = self.queue.lane_of(k.seq);
            if let Some(l) = lane {
                if !seen_lanes.insert(l) {
                    continue;
                }
            }
            let kind = match self.queue.peek_kind(k) {
                EventKind::Call(_) => CandidateKind::Call,
                EventKind::Resume(pid, _) => CandidateKind::Resume(*pid),
                EventKind::LinkFault(_) => CandidateKind::LinkFault,
            };
            candidates.push(Candidate {
                seq: k.seq,
                lane,
                kind,
            });
            candidate_keys.push(i);
        }
        let chosen = if candidates.len() > 1 {
            let policy = self
                .policy
                .as_mut()
                .expect("pop_with_policy without policy");
            let c = policy.choose(t, &candidates).min(candidates.len() - 1);
            self.decisions.push(Decision {
                time: t,
                step: self.steps.len(),
                candidates,
                chosen: c,
            });
            c
        } else {
            0
        };
        let key = keys.swap_remove(candidate_keys[chosen]);
        let ev = self.queue.take_key(key);
        self.queue.unpop(keys);
        self.steps.push(StepRecord {
            seq: ev.seq,
            time: ev.time,
            trace_lo: self.tracer.len(),
        });
        PolicyPop::Run(ev)
    }

    /// Does `pid` run on the coroutine backend? Decides how the drive loop
    /// dispatches its Resume events (inline poll vs. token handoff).
    fn proc_is_coro(&self, pid: Pid) -> bool {
        matches!(
            self.procs.get(pid).map(|e| &e.body),
            Some(ProcBody::Embryo(_) | ProcBody::Coro { .. } | ProcBody::Running)
        )
    }

    /// The drained-queue outcome: success iff no process is still parked.
    fn drained(&self) -> Result<(), SimError> {
        let parked: Vec<String> = self
            .procs
            .values()
            .filter(|e| e.alive)
            .map(|e| e.name.to_string())
            .collect();
        if parked.is_empty() {
            return Ok(());
        }
        Err(SimError::Deadlock(DeadlockInfo {
            time: self.now,
            parked,
        }))
    }
}

/// `false` when `FTMPI_NO_BATCH` is set: every wake gets its own token
/// handoff, as in the unbatched kernel, and flow transfers schedule one
/// event per chunk instead of coalescing contention-free chunk runs. The
/// batched and unbatched paths execute the same events in the same order
/// (wake batches only coalesce consecutive same-time wakes for one process,
/// which pop back-to-back anyway; flow batching only swallows completions no
/// other event could observe), so results are byte-identical either way; the
/// toggle exists for CI to prove exactly that. Exported for the flow layer
/// in `ftmpi-core`, which gates its chunk batching on the same switch.
pub fn batching_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("FTMPI_NO_BATCH").is_none())
}

/// `true` when `FTMPI_THREADED` is set: simulated processes run on the
/// legacy token-handoff OS-thread backend (one pooled thread per live rank,
/// Condvar rendezvous per wake) instead of being driven as stackless
/// coroutines inline on the kernel loop. The two backends execute the same
/// events in the same order and produce byte-identical results (see
/// DESIGN.md "Rank execution" for the equivalence argument); the toggle
/// keeps the threaded backend as the reference implementation for
/// differential testing. Overridable per-simulation with
/// [`Sim::force_threaded`].
pub fn threaded_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("FTMPI_THREADED").is_some())
}

/// Shared kernel handle. Internal; exposed types are [`Sim`] and [`SimCtx`].
pub struct Shared {
    pub(crate) state: Mutex<KernelState>,
    /// Lock-free mirror of the tracer's enabled flag, so the per-message
    /// trace calls on the hot path ([`SimCtx::trace`], [`SimCtx::kill`])
    /// skip the state mutex when tracing is off (the common case: only
    /// tests and debugging sessions enable it).
    trace_on: AtomicBool,
    /// This simulation's leases on the rank-thread pool; teardown waits for
    /// the count to reach zero (the pooled replacement for join-all).
    leases: Arc<LeaseGroup>,
}

impl Shared {
    /// Schedule a model closure. Used by both [`SimCtx`] and [`ProcCtx`].
    pub(crate) fn schedule_call(
        self: &Arc<Self>,
        at: SimTime,
        lane: Option<u64>,
        f: impl FnOnce(&SimCtx) + Send + 'static,
    ) -> EventId {
        let mut st = self.state.lock();
        let now = st.now;
        debug_assert!(at >= now, "scheduling into the past: at={at:?} now={now:?}");
        st.queue
            .push(at.max(now), lane, EventKind::Call(Box::new(f)))
    }

    fn schedule_resume(&self, at: SimTime, pid: Pid, kind: WakeKind) -> EventId {
        let mut st = self.state.lock();
        let at = at.max(st.now);
        st.queue
            .push(at, Some(pid.lane()), EventKind::Resume(pid, kind))
    }

    /// Schedule the model closure of a [`ProcCtx::exec`] call, remembering it
    /// so it can be cancelled if the process is killed before it runs.
    pub(crate) fn schedule_exec(
        self: &Arc<Self>,
        pid: Pid,
        at: SimTime,
        f: impl FnOnce(&SimCtx) + Send + 'static,
    ) {
        let mut st = self.state.lock();
        let at = at.max(st.now);
        // The wrapper clears the pending marker as soon as the call runs, so
        // `pending_exec` is `Some` exactly while the event is still queued
        // (keeping cancellation tombstones precise).
        let id = st.queue.push(
            at,
            Some(pid.lane()),
            EventKind::Call(Box::new(move |sc: &SimCtx| {
                if let Some(e) = sc.shared().state.lock().procs.get_mut(pid) {
                    e.pending_exec = None;
                }
                f(sc);
            })),
        );
        if let Some(entry) = st.procs.get_mut(pid) {
            entry.pending_exec = Some(id);
        }
    }
}

/// Why a run ended unsuccessfully.
#[derive(Debug)]
pub enum SimError {
    /// The event queue drained while processes were still parked.
    Deadlock(DeadlockInfo),
    /// A simulated process panicked (model or application bug).
    ProcessPanicked {
        /// Name of the panicking process.
        name: String,
        /// Rendered panic message.
        message: String,
    },
    /// The configured event budget was exhausted (runaway model).
    EventBudgetExhausted {
        /// Number of events executed before giving up.
        executed: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock(info) => {
                write!(
                    f,
                    "simulation deadlock at {}: {} parked process(es): {}",
                    info.time,
                    info.parked.len(),
                    info.parked.join(", ")
                )
            }
            SimError::ProcessPanicked { name, message } => {
                write!(f, "simulated process '{name}' panicked: {message}")
            }
            SimError::EventBudgetExhausted { executed } => {
                write!(f, "event budget exhausted after {executed} events")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Details of a detected deadlock.
#[derive(Debug)]
pub struct DeadlockInfo {
    /// Virtual time at which the queue drained.
    pub time: SimTime,
    /// Names of the processes still parked.
    pub parked: Vec<String>,
}

/// Summary of a completed run.
#[derive(Debug)]
pub struct RunReport {
    /// Kernel clock when the run ended.
    pub final_time: SimTime,
    /// Number of events executed.
    pub events_executed: u64,
    /// Exit records `(pid, name, status)` in completion order.
    pub exits: Vec<(Pid, String, ProcessExit)>,
    /// Collected trace (empty unless tracing was enabled).
    pub trace: Vec<TraceEvent>,
    /// Whether the run ended because [`SimCtx::request_stop`] was called.
    pub stopped: bool,
    /// Condvar round-trips avoided by batched wake delivery (0 when
    /// `FTMPI_NO_BATCH` is set or no same-time wake batches occurred).
    pub handoffs_saved: u64,
    /// Exploration mode only: every instant at which more than one
    /// candidate was ready, with the policy's choice. Empty otherwise.
    pub decisions: Vec<Decision>,
    /// Exploration mode only: one record per executed event, in execution
    /// order; each step's trace effects are
    /// `trace[step.trace_lo..next_step.trace_lo]`. Empty otherwise.
    pub steps: Vec<StepRecord>,
}

/// Service handle available to model closures while they run on the kernel
/// loop. All methods are safe to call at any point inside an event handler.
pub struct SimCtx {
    shared: Arc<Shared>,
    now: SimTime,
}

impl SimCtx {
    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// The current event's virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The time of the next pending event, if any. Event handlers use this
    /// to decide how far they may safely fast-forward: up to (but not
    /// including) the next event, nothing else can observe or perturb model
    /// state. The flow layer's chunk batching is built on exactly that
    /// window.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.shared.state.lock().queue.peek_time()
    }

    /// The configured stop horizon ([`Sim::set_max_time`]), if any. Batched
    /// fast-forwarding must not cross it: the unbatched kernel would have
    /// stopped at the first event past the horizon.
    pub fn horizon(&self) -> Option<SimTime> {
        self.shared.state.lock().max_time
    }

    /// Account for `n` events that a batching optimization proved
    /// equivalent to — and therefore did not schedule. Keeps
    /// [`RunReport::events_executed`] (which feeds calibration tables and
    /// cache fingerprints) identical between the batched and unbatched
    /// kernels.
    pub fn credit_virtual_events(&self, n: u64) {
        self.shared.state.lock().executed += n;
    }

    /// Schedule `f` at absolute time `at` (clamped to now if in the past).
    pub fn schedule(&self, at: SimTime, f: impl FnOnce(&SimCtx) + Send + 'static) -> EventId {
        self.shared.schedule_call(at.max(self.now), None, f)
    }

    /// Schedule `f` at `at` in a tiebreak *lane*: same-time events in the
    /// same lane always run in scheduling order, even under a perturbation
    /// seed ([`Sim::set_tiebreak_seed`]). Model code keys an event by the
    /// entity whose state it mutates — e.g. message arrivals by the
    /// destination process's [`Pid::lane`] — so that the defined semantics
    /// of same-entity ordering (channel FIFO, op boundaries) survive
    /// perturbation while independent events still permute. `None` marks
    /// the event as freely permutable, same as [`SimCtx::schedule`].
    pub fn schedule_keyed(
        &self,
        at: SimTime,
        lane: Option<u64>,
        f: impl FnOnce(&SimCtx) + Send + 'static,
    ) -> EventId {
        self.shared.schedule_call(at.max(self.now), lane, f)
    }

    /// Schedule `f` after a delay.
    pub fn schedule_in(&self, d: SimDuration, f: impl FnOnce(&SimCtx) + Send + 'static) -> EventId {
        self.shared.schedule_call(self.now + d, None, f)
    }

    /// Cancel a previously scheduled event. Cancelling an already-executed
    /// event is a harmless no-op.
    pub fn cancel(&self, id: EventId) {
        self.shared.state.lock().queue.cancel(id);
    }

    /// Wake a parked process now (no-op if it has exited).
    pub fn resume(&self, pid: Pid) {
        self.shared.schedule_resume(self.now, pid, WakeKind::Normal);
    }

    /// Wake a parked process at a future time.
    pub fn resume_at(&self, pid: Pid, at: SimTime) {
        self.shared.schedule_resume(at, pid, WakeKind::Normal);
    }

    /// Kill a process. On the coroutine backend the kernel drops the
    /// process's state machine at the kill wake (a pure state transition);
    /// on the threaded backend the next kernel interaction (or the current
    /// park) unwinds the thread. No-op for already-dead processes.
    pub fn kill(&self, pid: Pid) {
        // Pre-format the trace detail outside the lock; with tracing off
        // (the common case) the whole call takes one lock acquisition.
        let trace_detail = self
            .shared
            .trace_on
            .load(Ordering::Relaxed)
            .then(|| format!("kill {pid}"));
        let mut st = self.shared.state.lock();
        let Some(entry) = st.procs.get(pid) else {
            return;
        };
        if !entry.alive {
            return;
        }
        if let Some(detail) = trace_detail {
            st.tracer.record(TraceEvent {
                time: self.now,
                kind: TraceKind::Kill,
                pid: Some(pid),
                detail,
            });
        }
        let at = self.now.max(st.now);
        st.queue.push(
            at,
            Some(pid.lane()),
            EventKind::Resume(pid, WakeKind::Killed),
        );
    }

    /// Is the process still alive (spawned and not yet exited)?
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.shared
            .state
            .lock()
            .procs
            .get(pid)
            .map(|e| e.alive)
            .unwrap_or(false)
    }

    /// Spawn a new simulated process that starts at time `at`. The body is
    /// an async function of the process's [`ProcCtx`]; its suspension points
    /// are the kernel interactions ([`ProcCtx::exec`] and the sleep
    /// helpers).
    pub fn spawn_at<F, Fut>(&self, at: SimTime, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(ProcCtx) -> Fut + Send + 'static,
        Fut: Future<Output = ()> + Send + 'static,
    {
        spawn_inner(&self.shared, at.max(self.now), name.into(), f)
    }

    /// Spawn a new simulated process that starts immediately.
    pub fn spawn<F, Fut>(&self, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(ProcCtx) -> Fut + Send + 'static,
        Fut: Future<Output = ()> + Send + 'static,
    {
        self.spawn_at(self.now, name, f)
    }

    /// Ask the kernel loop to stop after the current event.
    pub fn request_stop(&self) {
        self.shared.state.lock().stop_requested = true;
    }

    /// Record a model trace event. With tracing disabled (the common case)
    /// this is a single relaxed atomic load — no lock, no formatting.
    pub fn trace(&self, label: &'static str, pid: Option<Pid>, detail: impl FnOnce() -> String) {
        if !self.shared.trace_on.load(Ordering::Relaxed) {
            return;
        }
        let ev = TraceEvent {
            time: self.now,
            kind: TraceKind::Model(label),
            pid,
            detail: detail(),
        };
        self.shared.state.lock().tracer.record(ev);
    }

    /// Record a typed protocol event (see [`crate::ProtoEvent`]). Same
    /// lock-free gate as [`SimCtx::trace`]: with tracing disabled this is a
    /// single relaxed atomic load, so protocol hot paths (every message
    /// send/delivery) stay zero-cost in ordinary runs.
    pub fn trace_proto(&self, ev: crate::trace::ProtoEvent) {
        if !self.shared.trace_on.load(Ordering::Relaxed) {
            return;
        }
        let rec = TraceEvent {
            time: self.now,
            kind: TraceKind::Proto(ev),
            pid: None,
            detail: String::new(),
        };
        self.shared.state.lock().tracer.record(rec);
    }
}

fn spawn_inner<F, Fut>(shared: &Arc<Shared>, start_at: SimTime, name: String, f: F) -> Pid
where
    F: FnOnce(ProcCtx) -> Fut + Send + 'static,
    Fut: Future<Output = ()> + Send + 'static,
{
    let name: Arc<str> = Arc::from(name.as_str());
    let pid;
    let threaded;
    {
        let mut st = shared.state.lock();
        pid = Pid(st.next_pid);
        st.next_pid += 1;
        threaded = st.threaded;
        if st.tracer.enabled() {
            let detail = format!("spawn '{name}'");
            let now = st.now;
            st.tracer.record(TraceEvent {
                time: now,
                kind: TraceKind::Spawn,
                pid: Some(pid),
                detail,
            });
        }
    }
    let body = if threaded {
        let handoff = Handoff::new();
        let thread_shared = Arc::clone(shared);
        let thread_handoff = Arc::clone(&handoff);
        let thread_name = Arc::clone(&name);
        let trampoline = move || {
            let (kind, now) = thread_handoff.wait_first_wake();
            if matches!(kind, WakeKind::Killed) {
                thread_handoff.exit(ProcessExit::Killed);
                return;
            }
            let driver_handoff = Arc::clone(&thread_handoff);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let ctx = ProcCtx {
                    pid,
                    name: thread_name,
                    driver: Driver::Threaded(driver_handoff),
                    shared: thread_shared,
                    local_time: now,
                };
                // The whole body runs inside a single poll: on this backend
                // every suspension point blocks on the token handoff and
                // resolves immediately, so a live process never observes
                // `Pending` — a kill unwinds the thread out of the poll via
                // `KilledSignal` instead.
                let mut fut = Box::pin(f(ctx));
                let mut cx = Context::from_waker(Waker::noop());
                match fut.as_mut().poll(&mut cx) {
                    Poll::Ready(()) => {}
                    Poll::Pending => unreachable!("threaded suspension returned Pending"),
                }
            }));
            let status = match result {
                Ok(()) => ProcessExit::Normal,
                Err(payload) => {
                    if payload.downcast_ref::<KilledSignal>().is_some() {
                        ProcessExit::Killed
                    } else {
                        ProcessExit::Panicked(panic_message(payload))
                    }
                }
            };
            thread_handoff.exit(status);
        };
        // Pool checkout: an idle worker runs the trampoline, or (escape
        // hatch / cold pool) a fresh thread is spawned. `join` is `Some`
        // only for dedicated escape-hatch threads; pooled lifetimes are
        // governed by the lease group, which teardown quiesces.
        let join = pool::spawn_process(
            format!("sim-{pid}-{name}"),
            &shared.leases,
            Box::new(trampoline),
        );
        ProcBody::Threaded { handoff, join }
    } else {
        // Coroutine backend: no thread at all. The body is materialized as
        // a kernel-owned state machine at its first Normal wake.
        ProcBody::Embryo(Box::new(move |ctx| Box::pin(f(ctx))))
    };
    {
        let mut st = shared.state.lock();
        st.procs.insert(
            pid,
            ProcEntry {
                name,
                body,
                alive: true,
                pending_exec: None,
            },
        );
        let now = st.now;
        st.queue.push(
            start_at.max(now),
            Some(pid.lane()),
            EventKind::Resume(pid, WakeKind::Normal),
        );
    }
    pid
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The simulation: owns the kernel state and drives the event loop.
pub struct Sim {
    shared: Arc<Shared>,
}

/// One unit of work popped under the state lock and dispatched outside it.
enum Dispatch {
    Call(Box<dyn FnOnce(&SimCtx) + Send>, SimTime),
    /// Threaded backend: hand the token (with a wake batch) to the process
    /// thread and wait for it to park or exit.
    Wakes(Pid, SimTime, WakeBatch),
    /// Coroutine backend: step the process's state machine inline.
    Poll(Pid, SimTime, WakeKind),
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

/// Install (once per process) a panic hook that silences the expected
/// [`KilledSignal`] unwinds of killed simulated processes while delegating
/// every real panic to the previous hook.
fn install_kill_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<KilledSignal>().is_some() {
                return; // expected failure-injection unwind
            }
            previous(info);
        }));
    });
}

impl Sim {
    /// Create an empty simulation at time zero.
    pub fn new() -> Sim {
        install_kill_quiet_hook();
        Sim {
            shared: Arc::new(Shared {
                state: Mutex::new(KernelState {
                    queue: EventQueue::default(),
                    now: SimTime::ZERO,
                    procs: ProcTable::default(),
                    next_pid: 0,
                    threaded: threaded_enabled(),
                    stop_requested: false,
                    executed: 0,
                    max_events: None,
                    max_time: None,
                    tracer: Tracer::default(),
                    exits: Vec::new(),
                    handoffs_saved: 0,
                    policy: None,
                    decisions: Vec::new(),
                    steps: Vec::new(),
                }),
                trace_on: AtomicBool::new(false),
                leases: Arc::new(LeaseGroup::default()),
            }),
        }
    }

    /// Cap the number of events (defence against runaway models).
    pub fn set_max_events(&mut self, n: u64) {
        self.shared.state.lock().max_events = Some(n);
    }

    /// Stop the run once the kernel clock passes `t` (remaining processes are
    /// killed during teardown).
    pub fn set_max_time(&mut self, t: SimTime) {
        self.shared.state.lock().max_time = Some(t);
    }

    /// Enable trace collection (returned in the [`RunReport`]).
    pub fn enable_trace(&mut self) {
        self.shared.state.lock().tracer.set_enabled(true);
        self.shared.trace_on.store(true, Ordering::Relaxed);
    }

    /// Perturb same-time event tiebreaks with a seeded permutation.
    ///
    /// Every run remains fully deterministic for a given seed; what changes
    /// is the execution order of *independent* events scheduled for the
    /// same virtual instant (causal chains are unaffected: an event
    /// scheduled by another still runs after it). The `ftmpi-check` race
    /// detector re-runs configurations under several seeds and compares
    /// trace fingerprints — a difference means some model or protocol state
    /// depends on the arbitrary tie order. Call before the run starts.
    pub fn set_tiebreak_seed(&mut self, seed: u64) {
        self.shared.state.lock().queue.set_tiebreak_seed(seed);
    }

    /// Install a [`SchedulePolicy`] (exploration mode). Every pop with more
    /// than one ready candidate consults the policy; [`RunReport::decisions`]
    /// and [`RunReport::steps`] record the run's choice points and step
    /// effects. Wake batching is bypassed in this mode so each wake stays an
    /// individually choosable scheduling unit. Call before scheduling
    /// anything (the queue starts recording lanes here).
    pub fn set_schedule_policy(&mut self, policy: Box<dyn SchedulePolicy>) {
        let mut st = self.shared.state.lock();
        st.queue.record_lanes();
        st.policy = Some(policy);
    }

    /// Replace the (still empty) event queue with one on the requested
    /// backend, overriding the `FTMPI_NO_LADDER` default. Exploration's
    /// differential-backend mode drives the same schedule space through both
    /// backends and compares state-for-state.
    pub fn force_queue_backend(&mut self, ladder: bool) {
        let mut st = self.shared.state.lock();
        debug_assert_eq!(
            st.queue.scheduled_total, 0,
            "switch backends before scheduling"
        );
        st.queue = EventQueue::with_ladder(ladder);
        if st.policy.is_some() {
            st.queue.record_lanes();
        }
    }

    /// Override the `FTMPI_THREADED` backend choice for this simulation:
    /// `true` runs processes on the legacy OS-thread backend, `false` on the
    /// coroutine backend. Differential tests drive the same workload through
    /// both backends in one process and compare results byte for byte. Call
    /// before spawning anything.
    pub fn force_threaded(&mut self, threaded: bool) {
        let mut st = self.shared.state.lock();
        debug_assert_eq!(st.next_pid, 0, "switch process backends before spawning");
        st.threaded = threaded;
    }

    /// Convenience constructor for a [`SharedFlag`].
    pub fn shared_flag(&self) -> crate::process::SharedFlag {
        crate::process::SharedFlag::new()
    }

    /// Spawn an initial process starting at time zero. See
    /// [`SimCtx::spawn_at`] for the async body contract.
    pub fn spawn<F, Fut>(&mut self, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(ProcCtx) -> Fut + Send + 'static,
        Fut: Future<Output = ()> + Send + 'static,
    {
        spawn_inner(&self.shared, SimTime::ZERO, name.into(), f)
    }

    /// Spawn an initial process starting at `at`.
    pub fn spawn_at<F, Fut>(&mut self, at: SimTime, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(ProcCtx) -> Fut + Send + 'static,
        Fut: Future<Output = ()> + Send + 'static,
    {
        spawn_inner(&self.shared, at, name.into(), f)
    }

    /// Schedule a model closure before the run starts.
    pub fn schedule(&mut self, at: SimTime, f: impl FnOnce(&SimCtx) + Send + 'static) -> EventId {
        self.shared.schedule_call(at, None, f)
    }

    /// Schedule a network-fault transition (link down / degrade / restore,
    /// partition start / heal) before the run starts. Fault transitions race
    /// with every flow chunk and retry probe touching the same link, so a
    /// tiebreak `lane` is mandatory: same-lane same-time events keep their
    /// scheduling order under any perturbation seed.
    pub fn schedule_link_fault(
        &mut self,
        at: SimTime,
        lane: u64,
        f: impl FnOnce(&SimCtx) + Send + 'static,
    ) -> EventId {
        let mut st = self.shared.state.lock();
        let at = at.max(st.now);
        st.queue
            .push(at, Some(lane), EventKind::LinkFault(Box::new(f)))
    }

    /// Drive the event loop to completion.
    ///
    /// Ends when the queue drains with no parked processes, when a stop is
    /// requested, or when a budget/deadline triggers. On success all process
    /// threads have been joined.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        let result = self.run_loop();
        // Always tear down remaining threads, even on error paths, so that
        // dropping the Sim never leaks parked threads.
        self.teardown();
        let mut st = self.shared.state.lock();
        let report = RunReport {
            final_time: st.now,
            events_executed: st.executed,
            exits: st
                .exits
                .iter()
                .map(|(p, n, e)| (*p, n.to_string(), e.clone()))
                .collect(),
            trace: st.tracer.take(),
            stopped: st.stop_requested,
            handoffs_saved: st.handoffs_saved,
            decisions: std::mem::take(&mut st.decisions),
            steps: std::mem::take(&mut st.steps),
        };
        drop(st);
        result.map(|()| report)
    }

    fn run_loop(&mut self) -> Result<(), SimError> {
        let batching = batching_enabled();
        loop {
            let dispatch = {
                let mut st = self.shared.state.lock();
                if st.stop_requested {
                    return Ok(());
                }
                if let Some(max) = st.max_events {
                    if st.executed >= max {
                        return Err(SimError::EventBudgetExhausted {
                            executed: st.executed,
                        });
                    }
                }
                if st.policy.is_some() {
                    match st.pop_with_policy() {
                        PolicyPop::Drained => return st.drained(),
                        PolicyPop::Horizon => return Ok(()),
                        PolicyPop::Retry => continue,
                        PolicyPop::Run(ev) => {
                            debug_assert!(ev.time >= st.now, "event queue went backwards");
                            st.now = ev.time;
                            match ev.kind {
                                EventKind::Call(f) | EventKind::LinkFault(f) => {
                                    st.executed += 1;
                                    Dispatch::Call(f, ev.time)
                                }
                                // No wake coalescing: each wake must remain
                                // an individually orderable scheduling unit.
                                EventKind::Resume(pid, kind) => {
                                    if st.proc_is_coro(pid) {
                                        Dispatch::Poll(pid, ev.time, kind)
                                    } else {
                                        Dispatch::Wakes(
                                            pid,
                                            ev.time,
                                            WakeBatch::single(kind, ev.time),
                                        )
                                    }
                                }
                            }
                        }
                    }
                } else {
                    match st.queue.pop() {
                        None => return st.drained(),
                        Some(ev) => {
                            // Resumes aimed at dead processes are stale: drop them
                            // without advancing the clock, so a killed process's
                            // pending wakes don't distort the final time.
                            if let EventKind::Resume(pid, _) = ev.kind {
                                let alive = st.procs.get(pid).map(|e| e.alive).unwrap_or(false);
                                if !alive {
                                    continue;
                                }
                            }
                            debug_assert!(ev.time >= st.now, "event queue went backwards");
                            // Past the horizon: stop without consuming the event
                            // (the clock must not advance beyond max_time).
                            if st.max_time.map(|mt| ev.time > mt).unwrap_or(false) {
                                st.stop_requested = true;
                                return Ok(());
                            }
                            st.now = ev.time;
                            match ev.kind {
                                EventKind::Call(f) | EventKind::LinkFault(f) => {
                                    st.executed += 1;
                                    Dispatch::Call(f, ev.time)
                                }
                                EventKind::Resume(pid, kind) => {
                                    if st.proc_is_coro(pid) {
                                        // Coroutine backend: no wake batching
                                        // — there is no handoff to save, each
                                        // wake is one inline poll. Consecutive
                                        // same-time wakes pop back-to-back
                                        // with nothing in between (they share
                                        // the process's tiebreak lane), so
                                        // delivery order matches the threaded
                                        // backend's batched order exactly.
                                        Dispatch::Poll(pid, ev.time, kind)
                                    } else {
                                        let mut wakes = WakeBatch::single(kind, ev.time);
                                        if batching {
                                            // Coalesce every immediately-following
                                            // same-time wake for this process into
                                            // one token handoff. Same-lane same-time
                                            // events pop in scheduling order under
                                            // any tiebreak seed, so the batch
                                            // preserves exactly the order the
                                            // unbatched loop would deliver.
                                            // (`executed` for wake batches is
                                            // accounted after delivery — see
                                            // `resume_process`.)
                                            while let Some(next) = st.queue.pop_if(|t, k| {
                                                t == ev.time
                                                    && matches!(k, EventKind::Resume(p, _) if *p == pid)
                                            }) {
                                                if let EventKind::Resume(_, k) = next.kind {
                                                    wakes.push_back(k, next.time);
                                                }
                                            }
                                        }
                                        Dispatch::Wakes(pid, ev.time, wakes)
                                    }
                                }
                            }
                        }
                    }
                }
            };
            match dispatch {
                Dispatch::Call(f, time) => {
                    let sc = SimCtx {
                        shared: Arc::clone(&self.shared),
                        now: time,
                    };
                    f(&sc);
                }
                Dispatch::Wakes(pid, time, wakes) => {
                    if let Some(err) = self.resume_process(pid, wakes, time) {
                        return Err(err);
                    }
                }
                Dispatch::Poll(pid, time, kind) => {
                    if let Some(err) = self.drive_coro(pid, kind, time) {
                        return Err(err);
                    }
                }
            }
        }
    }

    /// Step a coroutine-backed process: deposit the wake and poll its state
    /// machine inline. The machine is taken out of the table and polled
    /// *outside* the state lock — polling reenters the kernel (`exec`
    /// schedules its Call event). A kill wake never reaches the machine:
    /// killing is a state transition in which the kernel drops the machine
    /// (running its Drop impls, the analogue of the threaded backend's
    /// `KilledSignal` unwind) and records the exit.
    fn drive_coro(&self, pid: Pid, kind: WakeKind, now: SimTime) -> Option<SimError> {
        enum Step {
            Drop(ProcBody),
            Start(EmbryoFn, Arc<WakeSlot>, ProcCtx),
            Poll(CoroFuture, Arc<WakeSlot>),
        }
        let step = {
            let mut st = self.shared.state.lock();
            // One executed event per delivered wake, matching the threaded
            // backend's per-wake accounting (a kill delivery also counts 1).
            st.executed += 1;
            let e = st.procs.get_mut(pid)?;
            if !e.alive {
                return None;
            }
            match kind {
                WakeKind::Killed => {
                    let body = std::mem::replace(&mut e.body, ProcBody::Gone);
                    Step::Drop(body)
                }
                WakeKind::Normal => match std::mem::replace(&mut e.body, ProcBody::Running) {
                    ProcBody::Embryo(factory) => {
                        let slot = WakeSlot::new();
                        let ctx = ProcCtx {
                            pid,
                            name: Arc::clone(&e.name),
                            driver: Driver::Coro(Arc::clone(&slot)),
                            shared: Arc::clone(&self.shared),
                            local_time: now,
                        };
                        Step::Start(factory, slot, ctx)
                    }
                    ProcBody::Coro { fut, slot } => {
                        slot.put(WakeKind::Normal, now);
                        Step::Poll(fut, slot)
                    }
                    other => {
                        // A live coroutine is always parked between wakes.
                        e.body = other;
                        debug_assert!(false, "coroutine resumed in an undrivable state");
                        return None;
                    }
                },
            }
        };
        let (pending, slot) = match step {
            Step::Drop(body) => {
                // Drop outside the lock: the machine's Drop impls may run
                // arbitrary model-state destructors.
                drop(body);
                return self.record_coro_exit(pid, now, ProcessExit::Killed);
            }
            Step::Start(factory, slot, ctx) => (CoroStep::New(factory, ctx), slot),
            Step::Poll(fut, slot) => (CoroStep::Existing(fut), slot),
        };
        enum CoroStep {
            New(EmbryoFn, ProcCtx),
            Existing(CoroFuture),
        }
        // Construct (first wake) and poll with panics contained, exactly as
        // the threaded trampoline's catch_unwind does.
        let polled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut fut = match pending {
                CoroStep::New(factory, ctx) => factory(ctx),
                CoroStep::Existing(fut) => fut,
            };
            let mut cx = Context::from_waker(Waker::noop());
            match fut.as_mut().poll(&mut cx) {
                Poll::Pending => Some(fut),
                Poll::Ready(()) => None,
            }
        }));
        match polled {
            Ok(Some(fut)) => {
                // Parked at a suspension point: store the machine back.
                let mut st = self.shared.state.lock();
                if let Some(e) = st.procs.get_mut(pid) {
                    e.body = ProcBody::Coro { fut, slot };
                }
                None
            }
            Ok(None) => self.record_coro_exit(pid, now, ProcessExit::Normal),
            Err(payload) => {
                let status = if payload.downcast_ref::<KilledSignal>().is_some() {
                    ProcessExit::Killed
                } else {
                    ProcessExit::Panicked(panic_message(payload))
                };
                self.record_coro_exit(pid, now, status)
            }
        }
    }

    /// Exit bookkeeping for a coroutine-backed process: mirror of the
    /// threaded backend's `resume_process` exit branch (dead-mark, pending
    /// `exec` cancellation, exit trace and record, panic escalation).
    fn record_coro_exit(&self, pid: Pid, now: SimTime, status: ProcessExit) -> Option<SimError> {
        let mut st = self.shared.state.lock();
        let name = if let Some(e) = st.procs.get_mut(pid) {
            e.alive = false;
            e.body = ProcBody::Gone;
            let pending = e.pending_exec.take();
            let name = Arc::clone(&e.name);
            if let Some(id) = pending {
                st.queue.cancel(id);
            }
            name
        } else {
            Arc::from("?")
        };
        if st.tracer.enabled() {
            let detail = format!("exit '{name}': {status:?}");
            st.tracer.record(TraceEvent {
                time: now,
                kind: TraceKind::Exit,
                pid: Some(pid),
                detail,
            });
        }
        st.exits.push((pid, Arc::clone(&name), status.clone()));
        if let ProcessExit::Panicked(message) = status {
            return Some(SimError::ProcessPanicked {
                name: name.to_string(),
                message,
            });
        }
        None
    }

    /// Hand the token to `pid` with a batch of wakes; returns an error for
    /// real panics. Event accounting happens here, after delivery: the
    /// process consumed `delivered` of the batch, and each consumed wake is
    /// one executed event — exactly what the unbatched loop would have
    /// counted, because the wakes it left unconsumed (it exited mid-batch)
    /// are the ones that loop would have dropped as stale. A process found
    /// already dead still counts its one popped wake, as before.
    fn resume_process(&self, pid: Pid, wakes: WakeBatch, now: SimTime) -> Option<SimError> {
        let handoff = {
            let st = self.shared.state.lock();
            match st.procs.get(pid) {
                Some(e) if e.alive => match &e.body {
                    ProcBody::Threaded { handoff, .. } => Arc::clone(handoff),
                    // Only threaded processes are dispatched as wake batches.
                    _ => return None,
                },
                _ => return None, // stale resume for a dead process
            }
        };
        let (outcome, delivered) = handoff.resume_batch(wakes);
        let mut st = self.shared.state.lock();
        st.executed += (delivered as u64).max(1);
        st.handoffs_saved += delivered.saturating_sub(1) as u64;
        match outcome {
            ResumeOutcome::Parked => None,
            ResumeOutcome::Exited(status) => {
                let name = if let Some(e) = st.procs.get_mut(pid) {
                    e.alive = false;
                    let pending = e.pending_exec.take();
                    let name = Arc::clone(&e.name);
                    if let Some(id) = pending {
                        st.queue.cancel(id);
                    }
                    name
                } else {
                    Arc::from("?")
                };
                if st.tracer.enabled() {
                    let detail = format!("exit '{name}': {status:?}");
                    st.tracer.record(TraceEvent {
                        time: now,
                        kind: TraceKind::Exit,
                        pid: Some(pid),
                        detail,
                    });
                }
                st.exits.push((pid, Arc::clone(&name), status.clone()));
                if let ProcessExit::Panicked(message) = status {
                    return Some(SimError::ProcessPanicked {
                        name: name.to_string(),
                        message,
                    });
                }
                None
            }
        }
    }

    /// Kill every remaining process (lowest pid first) and join all threads.
    fn teardown(&mut self) {
        // Decide each victim's backend under the lock but act outside it:
        // threaded kills rendezvous with the process thread, and coroutine
        // drops may run arbitrary Drop impls.
        enum Victim {
            Coro(Pid, ProcBody, SimTime),
            Threaded(Pid, Arc<Handoff>, Arc<str>, SimTime),
        }
        loop {
            let victim = {
                let mut st = self.shared.state.lock();
                let now = st.now;
                let Some(pid) = st
                    .procs
                    .iter()
                    .filter(|(_, e)| e.alive)
                    .map(|(pid, _)| pid)
                    .min()
                else {
                    break;
                };
                let Some(e) = st.procs.get_mut(pid) else {
                    break;
                };
                match &e.body {
                    ProcBody::Threaded { handoff, .. } => {
                        Victim::Threaded(pid, Arc::clone(handoff), Arc::clone(&e.name), now)
                    }
                    _ => {
                        let body = std::mem::replace(&mut e.body, ProcBody::Gone);
                        e.alive = false;
                        let name = Arc::clone(&e.name);
                        st.exits.push((pid, name, ProcessExit::Killed));
                        Victim::Coro(pid, body, now)
                    }
                }
            };
            match victim {
                Victim::Coro(_pid, body, _now) => drop(body),
                Victim::Threaded(pid, handoff, name, now) => {
                    if let ResumeOutcome::Exited(status) = handoff.resume(WakeKind::Killed, now) {
                        let mut st = self.shared.state.lock();
                        if let Some(e) = st.procs.get_mut(pid) {
                            e.alive = false;
                        }
                        st.exits.push((pid, name, status));
                    } else {
                        // A process that parks again after a kill wake would
                        // be a trampoline bug; mark it dead to guarantee
                        // loop progress.
                        let mut st = self.shared.state.lock();
                        if let Some(e) = st.procs.get_mut(pid) {
                            e.alive = false;
                        }
                    }
                }
            }
        }
        // Join dedicated (escape-hatch) threads, then wait for every pooled
        // worker leased by this simulation to finish its trampoline. After
        // this, no thread still references this Sim's state.
        let joins: Vec<JoinHandle<()>> = {
            let mut st = self.shared.state.lock();
            st.procs
                .values_mut()
                .filter_map(|e| match &mut e.body {
                    ProcBody::Threaded { join, .. } => join.take(),
                    _ => None,
                })
                .collect()
        };
        for j in joins {
            let _ = j.join();
        }
        pool::wait_group_idle(&self.shared.leases);
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        self.teardown();
    }
}
