//! Inline wake batches: the SmallVec-style wait-list handed from the kernel
//! loop to a process with the execution token.
//!
//! A wake batch almost always holds one entry (a single resume) and rarely
//! more than a handful (coalesced same-time wakes). Storing the first
//! [`INLINE_WAKES`] entries inline keeps the kernel hot path free of heap
//! allocation; pathological batches spill into a `VecDeque` and degrade
//! gracefully.

use std::collections::VecDeque;

use crate::process::WakeKind;
use crate::time::SimTime;

/// Entries held inline before spilling to the heap. Four covers every batch
/// the figure workloads produce outside deliberate marker storms.
const INLINE_WAKES: usize = 4;

/// FIFO batch of `(kind, time)` wakes with inline storage.
pub(crate) struct WakeBatch {
    inline: [(WakeKind, SimTime); INLINE_WAKES],
    /// Next inline entry to pop / number filled, `head <= len <= INLINE`.
    head: u8,
    filled: u8,
    spill: VecDeque<(WakeKind, SimTime)>,
}

impl WakeBatch {
    pub fn new() -> WakeBatch {
        WakeBatch {
            inline: [(WakeKind::Normal, SimTime::ZERO); INLINE_WAKES],
            head: 0,
            filled: 0,
            spill: VecDeque::new(),
        }
    }

    /// A batch holding one wake (the unbatched / first-wake case).
    pub fn single(kind: WakeKind, now: SimTime) -> WakeBatch {
        let mut b = WakeBatch::new();
        b.push_back(kind, now);
        b
    }

    pub fn push_back(&mut self, kind: WakeKind, now: SimTime) {
        if self.spill.is_empty() && (self.filled as usize) < INLINE_WAKES {
            self.inline[self.filled as usize] = (kind, now);
            self.filled += 1;
        } else {
            self.spill.push_back((kind, now));
        }
    }

    pub fn pop_front(&mut self) -> Option<(WakeKind, SimTime)> {
        if self.head < self.filled {
            let entry = self.inline[self.head as usize];
            self.head += 1;
            if self.head == self.filled {
                self.head = 0;
                self.filled = 0;
            }
            return Some(entry);
        }
        self.spill.pop_front()
    }

    pub fn is_empty(&self) -> bool {
        self.head == self.filled && self.spill.is_empty()
    }

    /// Discard all remaining wakes (stale: the target process exited).
    pub fn clear(&mut self) {
        self.head = 0;
        self.filled = 0;
        self.spill.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn fifo_across_inline_and_spill() {
        let mut b = WakeBatch::new();
        for i in 0..10u64 {
            b.push_back(WakeKind::Normal, t(i));
        }
        for i in 0..10u64 {
            assert_eq!(b.pop_front(), Some((WakeKind::Normal, t(i))));
        }
        assert!(b.is_empty());
        assert_eq!(b.pop_front(), None);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut b = WakeBatch::single(WakeKind::Normal, t(0));
        assert_eq!(b.pop_front(), Some((WakeKind::Normal, t(0))));
        // Inline storage resets once drained; reuse stays inline.
        b.push_back(WakeKind::Killed, t(1));
        b.push_back(WakeKind::Normal, t(2));
        assert_eq!(b.pop_front(), Some((WakeKind::Killed, t(1))));
        b.push_back(WakeKind::Normal, t(3));
        assert_eq!(b.pop_front(), Some((WakeKind::Normal, t(2))));
        assert_eq!(b.pop_front(), Some((WakeKind::Normal, t(3))));
        assert!(b.is_empty());
    }

    #[test]
    fn clear_discards_everything() {
        let mut b = WakeBatch::new();
        for i in 0..7u64 {
            b.push_back(WakeKind::Normal, t(i));
        }
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.pop_front(), None);
    }
}
