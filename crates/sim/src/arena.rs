//! Slab arena for event payloads.
//!
//! The scheduling structures ([`crate::ladder::LadderQueue`] and the heap
//! fallback) order events by a small `Copy` key; the fat part of an event —
//! the boxed model closure in [`EventKind`] — lives here, addressed by slot.
//! Sorting and sifting therefore move 32-byte keys instead of whole events,
//! and a cancelled event's payload is reclaimed the moment its tombstone is
//! discovered instead of riding along in the queue. The layout follows the
//! `QueuedEvent` / side-table idiom of trainspotting's scheduler.

use crate::event::EventKind;

/// Slab of event payloads with a free list. Slots are reused, so a long run
/// holds roughly `queue depth` payloads regardless of how many events it
/// schedules in total.
#[derive(Default)]
pub(crate) struct EventArena {
    slots: Vec<Option<EventKind>>,
    free: Vec<u32>,
}

impl EventArena {
    /// Store a payload, returning its slot.
    pub fn insert(&mut self, kind: EventKind) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none(), "free slot occupied");
                self.slots[slot as usize] = Some(kind);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("event arena slot overflow");
                self.slots.push(Some(kind));
                slot
            }
        }
    }

    /// Take a payload out, freeing the slot.
    pub fn take(&mut self, slot: u32) -> EventKind {
        let kind = self.slots[slot as usize]
            .take()
            .expect("event arena slot taken twice");
        self.free.push(slot);
        kind
    }

    /// Drop a payload (cancelled event), freeing the slot.
    pub fn discard(&mut self, slot: u32) {
        let _ = self.take(slot);
    }

    /// Borrow a payload without freeing it (queue head inspection).
    pub fn get(&self, slot: u32) -> &EventKind {
        self.slots[slot as usize]
            .as_ref()
            .expect("event arena slot empty")
    }

    /// Number of live payloads.
    #[allow(dead_code)] // invariant checks in tests
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call() -> EventKind {
        EventKind::Call(Box::new(|_| {}))
    }

    #[test]
    fn slots_are_reused_after_take_and_discard() {
        let mut a = EventArena::default();
        let s0 = a.insert(call());
        let s1 = a.insert(call());
        assert_ne!(s0, s1);
        assert_eq!(a.len(), 2);
        a.discard(s0);
        assert_eq!(a.len(), 1);
        let s2 = a.insert(call());
        assert_eq!(s2, s0, "freed slot reused");
        let _ = a.take(s1);
        let _ = a.take(s2);
        assert_eq!(a.len(), 0);
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn double_take_panics() {
        let mut a = EventArena::default();
        let s = a.insert(call());
        let _ = a.take(s);
        let _ = a.take(s);
    }
}
