//! Deterministic process-oriented discrete-event simulation kernel.
//!
//! This crate is the substrate every other `ftmpi` crate runs on. It provides
//! a virtual clock, an event queue ordered by `(time, sequence)`, and
//! *simulated processes*: `async` Rust bodies compiled into resumable state
//! machines that the kernel owns and steps **inline** from its event loop —
//! no OS thread per process, so topologies with 10⁵⁺ processes fit in one
//! scheduler thread. Execution stays strictly sequential (one machine steps
//! at a time), so every run with the same inputs takes the same scheduling
//! decisions and produces bit-identical virtual timings. Setting
//! `FTMPI_THREADED=1` (or [`Sim::force_threaded`]) runs the same bodies on
//! the legacy cooperative OS-thread backend instead; both backends execute
//! the same events in the same order and produce byte-identical results.
//!
//! # Lazy local clocks
//!
//! Simulated computation is free: [`ProcCtx::advance`] only bumps the
//! process-local clock. The kernel is involved only when a process interacts
//! with shared model state through [`ProcCtx::exec`], which schedules a
//! closure *at the process's local time* and suspends the state machine until
//! the model wakes it through a [`Reply`]. This keeps event counts
//! proportional to communication operations, not compute phases.
//!
//! # Failure injection
//!
//! Processes can be killed at any virtual time ([`SimCtx::kill`]). The kernel
//! drops a killed process's state machine at the kill wake — a pure state
//! transition that runs the machine's destructors, mirroring the "task killed
//! by the operating system" failure model of the paper this workspace
//! reproduces. (On the threaded backend the kill is delivered as a panic
//! payload that unwinds the process thread; the observable effects are
//! identical.)
//!
//! # Example
//!
//! ```
//! use ftmpi_sim::{Sim, SimDuration};
//!
//! let mut sim = Sim::new();
//! let done = sim.shared_flag();
//! sim.spawn("worker", move |mut ctx| async move {
//!     ctx.advance(SimDuration::from_secs_f64(2.5)); // simulated compute
//!     ctx.sleep_until_local().await;                // sync with the kernel
//!     done.set();
//! });
//! let report = sim.run().unwrap();
//! assert!(report.final_time.as_secs_f64() >= 2.5);
//! ```

#![warn(missing_docs)]

mod arena;
mod event;
mod kernel;
mod ladder;
pub mod microbench;
mod pool;
mod process;
mod reply;
mod schedule;
mod table;
mod time;
mod trace;
mod wakes;

pub use event::EventId;
pub use kernel::{
    batching_enabled, threaded_enabled, DeadlockInfo, RunReport, Sim, SimCtx, SimError,
};
pub use pool::{pool_stats, wait_live_below, PoolStats};
pub use process::{Pid, ProcCtx, ProcessExit, SharedFlag};
pub use reply::Reply;
pub use schedule::{
    Candidate, CandidateKind, Decision, PrescribedPolicy, SchedulePolicy, StepRecord,
};
pub use time::{SimDuration, SimTime};
pub use trace::{ProtoEvent, TraceEvent, TraceKind, Tracer};

/// Panic payload used by the threaded backend (`FTMPI_THREADED=1`) to unwind
/// a simulated process that has been killed. The coroutine backend never
/// unwinds: the kernel drops the killed process's state machine instead.
///
/// Process code never observes this type: the trampoline installed by
/// [`Sim::spawn`] catches it and records a [`ProcessExit::Killed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KilledSignal;
