//! Deterministic process-oriented discrete-event simulation kernel.
//!
//! This crate is the substrate every other `ftmpi` crate runs on. It provides
//! a virtual clock, an event queue ordered by `(time, sequence)`, and
//! *simulated processes*: ordinary Rust closures running on dedicated OS
//! threads that are scheduled **cooperatively** — exactly one thread (either
//! the kernel loop or a single simulated process) runs at any instant, so
//! every run with the same inputs takes the same scheduling decisions and
//! produces bit-identical virtual timings.
//!
//! # Lazy local clocks
//!
//! Simulated computation is free: [`ProcCtx::advance`] only bumps the
//! process-local clock. The kernel is involved only when a process interacts
//! with shared model state through [`ProcCtx::exec`], which schedules a
//! closure *at the process's local time* and parks the thread until the model
//! wakes it through a [`Reply`]. This keeps event counts proportional to
//! communication operations, not compute phases.
//!
//! # Failure injection
//!
//! Processes can be killed at any virtual time ([`SimCtx::kill`]). A killed
//! process unwinds at its next kernel interaction via a panic payload that the
//! process trampoline catches, mirroring the "task killed by the operating
//! system" failure model of the paper this workspace reproduces.
//!
//! # Example
//!
//! ```
//! use ftmpi_sim::{Sim, SimDuration};
//!
//! let mut sim = Sim::new();
//! let done = sim.shared_flag();
//! sim.spawn("worker", move |mut ctx| {
//!     ctx.advance(SimDuration::from_secs_f64(2.5)); // simulated compute
//!     ctx.sleep_until_local();                      // sync with the kernel
//!     done.set();
//! });
//! let report = sim.run().unwrap();
//! assert!(report.final_time.as_secs_f64() >= 2.5);
//! ```

#![warn(missing_docs)]

mod arena;
mod event;
mod kernel;
mod ladder;
pub mod microbench;
mod pool;
mod process;
mod reply;
mod schedule;
mod table;
mod time;
mod trace;
mod wakes;

pub use event::EventId;
pub use kernel::{batching_enabled, DeadlockInfo, RunReport, Sim, SimCtx, SimError};
pub use pool::{pool_stats, wait_live_below, PoolStats};
pub use process::{Pid, ProcCtx, ProcessExit, SharedFlag};
pub use reply::Reply;
pub use schedule::{
    Candidate, CandidateKind, Decision, PrescribedPolicy, SchedulePolicy, StepRecord,
};
pub use time::{SimDuration, SimTime};
pub use trace::{ProtoEvent, TraceEvent, TraceKind, Tracer};

/// Panic payload used to unwind a simulated process that has been killed.
///
/// Process code never observes this type: the trampoline installed by
/// [`Sim::spawn`] catches it and records a [`ProcessExit::Killed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KilledSignal;
